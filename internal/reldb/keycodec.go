package reldb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Order-preserving key encoding. EncodeKey maps a tuple of values to a byte
// string such that bytes.Compare on the encodings matches lexicographic
// Compare on the tuples. Index keys are built with this codec so that the
// B-tree can operate on flat byte strings.
//
// Layout per value: one tag byte, then a kind-specific payload.
//
//	0x00           NULL (no payload)
//	0x01           INT: 8 bytes big-endian with the sign bit flipped
//	0x02           FLOAT: 8 bytes of order-adjusted IEEE-754 bits
//	0x03           STRING: escaped bytes terminated by 0x00 0x01
//	0x04           BOOL: one byte, 0 or 1
//
// Within strings, 0x00 is escaped to 0x00 0xFF so the terminator cannot
// appear in the payload. Integers and floats of different kinds do not
// inter-compare in the encoding; schema columns are homogeneous so index
// keys never mix them.
const (
	tagNull   = 0x00
	tagInt    = 0x01
	tagFloat  = 0x02
	tagString = 0x03
	tagBool   = 0x04
)

// ErrBadKey reports a malformed key encoding.
var ErrBadKey = errors.New("reldb: malformed key encoding")

// EncodeKey appends the order-preserving encoding of vals to dst and
// returns the extended slice.
func EncodeKey(dst []byte, vals ...Value) []byte {
	for _, v := range vals {
		dst = encodeValue(dst, v)
	}
	return dst
}

func encodeValue(dst []byte, v Value) []byte {
	switch v.kind {
	case KindNull:
		return append(dst, tagNull)
	case KindInt:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(v.i)^(1<<63))
		dst = append(dst, tagInt)
		return append(dst, buf[:]...)
	case KindFloat:
		bits := math.Float64bits(v.f)
		if bits&(1<<63) != 0 {
			bits = ^bits // negative: flip all bits
		} else {
			bits |= 1 << 63 // positive: flip sign bit
		}
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], bits)
		dst = append(dst, tagFloat)
		return append(dst, buf[:]...)
	case KindString:
		dst = append(dst, tagString)
		for i := 0; i < len(v.s); i++ {
			c := v.s[i]
			dst = append(dst, c)
			if c == 0x00 {
				dst = append(dst, 0xFF)
			}
		}
		return append(dst, 0x00, 0x01)
	case KindBool:
		dst = append(dst, tagBool)
		if v.b {
			return append(dst, 1)
		}
		return append(dst, 0)
	default:
		panic(fmt.Sprintf("reldb: cannot encode kind %v", v.kind))
	}
}

// DecodeKey decodes all values from an encoding produced by EncodeKey.
func DecodeKey(key []byte) ([]Value, error) {
	var vals []Value
	for len(key) > 0 {
		v, rest, err := decodeValue(key)
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
		key = rest
	}
	return vals, nil
}

func decodeValue(key []byte) (Value, []byte, error) {
	if len(key) == 0 {
		return Value{}, nil, ErrBadKey
	}
	tag, key := key[0], key[1:]
	switch tag {
	case tagNull:
		return Null(), key, nil
	case tagInt:
		if len(key) < 8 {
			return Value{}, nil, ErrBadKey
		}
		u := binary.BigEndian.Uint64(key[:8]) ^ (1 << 63)
		return Int(int64(u)), key[8:], nil
	case tagFloat:
		if len(key) < 8 {
			return Value{}, nil, ErrBadKey
		}
		bits := binary.BigEndian.Uint64(key[:8])
		if bits&(1<<63) != 0 {
			bits &^= 1 << 63
		} else {
			bits = ^bits
		}
		return Float(math.Float64frombits(bits)), key[8:], nil
	case tagString:
		var out []byte
		for i := 0; i < len(key); i++ {
			c := key[i]
			if c != 0x00 {
				out = append(out, c)
				continue
			}
			if i+1 >= len(key) {
				return Value{}, nil, ErrBadKey
			}
			switch key[i+1] {
			case 0x01: // terminator
				return Str(string(out)), key[i+2:], nil
			case 0xFF: // escaped NUL
				out = append(out, 0x00)
				i++
			default:
				return Value{}, nil, ErrBadKey
			}
		}
		return Value{}, nil, ErrBadKey
	case tagBool:
		if len(key) < 1 {
			return Value{}, nil, ErrBadKey
		}
		// Only the canonical encodings 0 and 1 are valid, so every
		// decodable key re-encodes to the same bytes.
		switch key[0] {
		case 0:
			return Bool(false), key[1:], nil
		case 1:
			return Bool(true), key[1:], nil
		default:
			return Value{}, nil, ErrBadKey
		}
	default:
		return Value{}, nil, ErrBadKey
	}
}
