package reldb

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func resultSchema() *Schema {
	return &Schema{
		Name: "performance_result",
		Columns: []Column{
			{Name: "id", Type: KindInt},
			{Name: "execution_id", Type: KindInt},
			{Name: "metric_id", Type: KindInt},
			{Name: "tool_id", Type: KindInt},
			{Name: "units_id", Type: KindInt, Nullable: true},
			{Name: "value", Type: KindFloat},
		},
		PrimaryKey: []string{"id"},
	}
}

func fhrSchema() *Schema {
	return &Schema{
		Name: "focus_has_resource",
		Columns: []Column{
			{Name: "focus_id", Type: KindInt},
			{Name: "resource_id", Type: KindInt},
		},
		PrimaryKey: []string{"focus_id", "resource_id"},
	}
}

func openSegEngine(t *testing.T, dir string) *FileEngine {
	t.Helper()
	eng, err := Open(KindSegment, dir)
	if err != nil {
		t.Fatalf("Open segment: %v", err)
	}
	return eng.(*FileEngine)
}

// resultRow synthesizes a deterministic performance_result row for i.
func resultRow(i int) Row {
	units := Null()
	if i%3 != 0 {
		units = Int(int64(i % 5))
	}
	return Row{Null(), Int(int64(i % 7)), Int(int64(i % 13)), Int(1), units, Float(float64(i) * 1.5)}
}

func insertResults(t *testing.T, fe *FileEngine, n int) {
	t.Helper()
	fe.BeginWALBatch()
	for i := 0; i < n; i++ {
		if _, err := fe.Insert("performance_result", resultRow(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := fe.EndWALBatch(); err != nil {
		t.Fatalf("EndWALBatch: %v", err)
	}
}

// abandon simulates a crash: stop the compactor and drop the file
// handles without flushing, checkpointing, or closing cleanly. With
// sync mode on, everything committed is already in the WAL.
func abandon(fe *FileEngine) {
	if fe.seg != nil {
		fe.seg.shutdown()
	}
	fe.wal.Close()
}

func TestSegmentRoundTrip(t *testing.T) {
	db := NewMem()
	schema := &Schema{
		Name: "mixed",
		Columns: []Column{
			{Name: "id", Type: KindInt},
			{Name: "label", Type: KindString, Nullable: true},
			{Name: "score", Type: KindFloat, Nullable: true},
			{Name: "flag", Type: KindBool},
			{Name: "neg", Type: KindInt},
		},
		PrimaryKey: []string{"id"},
	}
	if err := db.CreateTable(schema); err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Table("mixed")
	labels := []string{"alpha", "beta", "alpha", "", "gamma"}
	var ids []int64
	var rows []Row
	for i := 0; i < 64; i++ {
		row := Row{Int(int64(i)), Str(labels[i%len(labels)]), Float(float64(i) * -0.25), Bool(i%2 == 0), Int(int64(-i * 1000))}
		if i%7 == 0 {
			row[1] = Null()
			row[2] = Float(math.NaN())
		}
		id, err := db.Insert("mixed", row)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		r, _ := tab.Get(id)
		rows = append(rows, r)
	}
	seg, err := buildSegment(tab, ids, rows)
	if err != nil {
		t.Fatal(err)
	}
	if seg.minPK != 0 || seg.maxPK != 63 {
		t.Fatalf("pk zone = [%d,%d], want [0,63]", seg.minPK, seg.maxPK)
	}
	got, err := decodeSegment(encodeSegment(seg))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.rows != seg.rows || got.table != "mixed" {
		t.Fatalf("decoded rows=%d table=%q", got.rows, got.table)
	}
	for i := 0; i < got.rows; i++ {
		if got.rowIDs[i] != seg.rowIDs[i] {
			t.Fatalf("rowID[%d] = %d, want %d", i, got.rowIDs[i], seg.rowIDs[i])
		}
		if !rowsEqual(got.row(i), seg.row(i)) {
			t.Fatalf("row %d mismatch: %v vs %v", i, got.row(i), seg.row(i))
		}
	}
}

func TestSegmentCompactScanAndPrune(t *testing.T) {
	fe := openSegEngine(t, t.TempDir())
	defer fe.Close()
	if err := fe.CreateTable(resultSchema()); err != nil {
		t.Fatal(err)
	}
	insertResults(t, fe, 1000)
	if _, ok := fe.SegmentView("performance_result"); ok {
		t.Fatal("view before compaction")
	}
	if err := fe.CompactSegments(); err != nil {
		t.Fatal(err)
	}
	v, ok := fe.SegmentView("performance_result")
	if !ok {
		t.Fatal("no view after compaction")
	}
	if v.Rows() != 1000 || v.TailRowID() != 1000 || v.MaxPK() != 1000 {
		t.Fatalf("view rows=%d tail=%d maxPK=%d", v.Rows(), v.TailRowID(), v.MaxPK())
	}

	// Full scan must reproduce every row.
	tab, _ := fe.Table("performance_result")
	seen := 0
	v.ScanPKRange(1, 1000, func(b ColumnBlock) bool {
		ids := b.Int64s(0)
		execs := b.Int64s(1)
		vals := b.Float64s(5)
		nulls := b.Nulls(4)
		units := b.Int64s(4)
		for i := range ids {
			row, found := tab.Get(b.RowIDs()[i])
			if !found {
				t.Fatalf("segment row %d missing from table", ids[i])
			}
			if row[1].Int64() != execs[i] || row[5].Float64() != vals[i] {
				t.Fatalf("row %d content mismatch", ids[i])
			}
			if row[4].IsNull() != (nulls != nil && nulls[i]) {
				t.Fatalf("row %d null mismatch", ids[i])
			}
			if !row[4].IsNull() && row[4].Int64() != units[i] {
				t.Fatalf("row %d units mismatch", ids[i])
			}
			seen++
		}
		return true
	})
	if seen != 1000 {
		t.Fatalf("scanned %d rows, want 1000", seen)
	}

	// Second segment; a range inside it prunes the first.
	insertResults(t, fe, 500)
	if err := fe.CompactSegments(); err != nil {
		t.Fatal(err)
	}
	v, ok = fe.SegmentView("performance_result")
	if !ok || v.Segments() != 2 || v.Rows() != 1500 {
		t.Fatalf("segments=%d rows=%d", v.Segments(), v.Rows())
	}
	pruned, bytes := v.ScanPKRange(1200, 1400, func(b ColumnBlock) bool { return true })
	if pruned != 1 {
		t.Fatalf("pruned = %d, want 1", pruned)
	}
	if bytes == 0 {
		t.Fatal("scan bytes not accounted")
	}
}

func TestSegmentCrashRecoveryBetweenCompactionAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	fe := openSegEngine(t, dir)
	fe.SetSync(true)
	if err := fe.CreateTable(resultSchema()); err != nil {
		t.Fatal(err)
	}
	if err := fe.CreateTable(fhrSchema()); err != nil {
		t.Fatal(err)
	}
	insertResults(t, fe, 2000)
	fe.BeginWALBatch()
	for f := 1; f <= 50; f++ {
		for r := 1; r <= 4; r++ {
			if _, err := fe.Insert("focus_has_resource", Row{Int(int64(f)), Int(int64(r))}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := fe.EndWALBatch(); err != nil {
		t.Fatal(err)
	}
	if err := fe.CompactSegments(); err != nil {
		t.Fatal(err)
	}
	// Committed batches after the compaction, then crash before any
	// checkpoint: the WAL must carry everything across the restart.
	insertResults(t, fe, 500)
	abandon(fe)

	fe2, err := OpenFile(dir) // auto-detects the segment marker
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer fe2.Close()
	if fe2.Kind() != KindSegment {
		t.Fatalf("kind = %q, want segment", fe2.Kind())
	}
	tab, _ := fe2.Table("performance_result")
	if tab.Len() != 2500 {
		t.Fatalf("rows after recovery = %d, want 2500", tab.Len())
	}
	link, _ := fe2.Table("focus_has_resource")
	if link.Len() != 200 {
		t.Fatalf("link rows after recovery = %d, want 200", link.Len())
	}
	// Content spot-checks across segment-resident and tail rows.
	for _, id := range []int64{1, 999, 2000, 2001, 2500} {
		row, ok := tab.Get(id)
		if !ok {
			t.Fatalf("row %d lost", id)
		}
		want := resultRow(int((id - 1) % 2000))
		if row[5].Float64() != want[5].Float64() {
			t.Fatalf("row %d value = %v, want %v", id, row[5], want[5])
		}
	}
	v, ok := fe2.SegmentView("performance_result")
	if !ok || v.Rows() != 2000 {
		t.Fatalf("recovered view: ok=%v rows=%d, want 2000", ok, v.Rows())
	}
	if v2, ok := fe2.SegmentView("focus_has_resource"); !ok || v2.Rows() != 200 {
		t.Fatalf("recovered link view: ok=%v", ok)
	}
}

// countSnapshotRows parses the snapshot and counts row records per table.
func countSnapshotRows(t *testing.T, path string) map[string]int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open snapshot: %v", err)
	}
	defer f.Close()
	rr := newRecordReader(f)
	counts := make(map[string]int)
	current := ""
	for {
		payload, err := rr.readRecord()
		if err != nil {
			break
		}
		p := &payloadReader{buf: payload}
		tag, _ := p.byteVal()
		switch tag {
		case snapTagSchema:
			s, err := decodeSchemaPayload(p)
			if err != nil {
				t.Fatal(err)
			}
			current = s.Name
		case snapTagRow:
			counts[current]++
		}
	}
	return counts
}

func TestSegmentCheckpointIsIncremental(t *testing.T) {
	dir := t.TempDir()
	fe := openSegEngine(t, dir)
	if err := fe.CreateTable(resultSchema()); err != nil {
		t.Fatal(err)
	}
	insertResults(t, fe, 2000)
	if err := fe.CompactSegments(); err != nil {
		t.Fatal(err)
	}
	insertResults(t, fe, 100) // unflushed tail
	if err := fe.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Checkpoint compacts first, so even the tail reaches a segment and
	// the snapshot holds zero hot rows.
	counts := countSnapshotRows(t, filepath.Join(dir, snapshotFile))
	if counts["performance_result"] != 0 {
		t.Fatalf("snapshot holds %d hot rows, want 0", counts["performance_result"])
	}
	if info, err := os.Stat(filepath.Join(dir, walFile)); err != nil || info.Size() != 0 {
		t.Fatalf("WAL not truncated after checkpoint (err=%v)", err)
	}
	insertResults(t, fe, 50)
	fe.SetSync(true)
	insertResults(t, fe, 1) // force a synced flush of the tail
	abandon(fe)

	fe2, err := OpenFile(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer fe2.Close()
	tab, _ := fe2.Table("performance_result")
	if tab.Len() != 2151 {
		t.Fatalf("rows after reopen = %d, want 2151", tab.Len())
	}
}

func TestSegmentDirtyFallbackAndCheckpointReset(t *testing.T) {
	dir := t.TempDir()
	fe := openSegEngine(t, dir)
	defer fe.Close()
	if err := fe.CreateTable(resultSchema()); err != nil {
		t.Fatal(err)
	}
	insertResults(t, fe, 1000)
	if err := fe.CompactSegments(); err != nil {
		t.Fatal(err)
	}
	if _, ok := fe.SegmentView("performance_result"); !ok {
		t.Fatal("no view after compaction")
	}
	// In-place update of a flushed row: the segment copy is stale, so
	// the scan path must disable itself.
	tab, _ := fe.Table("performance_result")
	row, _ := tab.Get(5)
	row[5] = Float(-123.5)
	if err := fe.Update("performance_result", 5, row); err != nil {
		t.Fatal(err)
	}
	if _, ok := fe.SegmentView("performance_result"); ok {
		t.Fatal("view survived a dirtying update")
	}
	st := fe.SegmentStats()
	if !st.Enabled || !st.Tables[0].Dirty {
		t.Fatalf("stats = %+v, want dirty", st.Tables[0])
	}
	// Checkpoint resets: drops the stale segments, snapshots in full,
	// and requeues the table so the next compaction rebuilds it.
	if err := fe.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := fe.CompactSegments(); err != nil {
		t.Fatal(err)
	}
	v, ok := fe.SegmentView("performance_result")
	if !ok || v.Rows() != 1000 {
		t.Fatalf("rebuilt view: ok=%v rows=%d, want 1000", ok, v.Rows())
	}
	found := false
	v.ScanPKRange(5, 5, func(b ColumnBlock) bool {
		ids := b.Int64s(0)
		vals := b.Float64s(5)
		for i, id := range ids {
			if id == 5 {
				found = true
				if vals[i] != -123.5 {
					t.Fatalf("rebuilt segment has stale value %v", vals[i])
				}
			}
		}
		return true
	})
	if !found {
		t.Fatal("updated row missing from rebuilt segment")
	}
}

func TestSegmentUnorderedInsertDisablesScan(t *testing.T) {
	fe := openSegEngine(t, t.TempDir())
	defer fe.Close()
	if err := fe.CreateTable(resultSchema()); err != nil {
		t.Fatal(err)
	}
	for _, id := range []int64{10, 20, 30} {
		if _, err := fe.Insert("performance_result", Row{Int(id), Int(1), Int(1), Int(1), Null(), Float(1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := fe.CompactSegments(); err != nil {
		t.Fatal(err)
	}
	if _, ok := fe.SegmentView("performance_result"); !ok {
		t.Fatal("no view")
	}
	// Out-of-order explicit PK breaks the tail invariant.
	if _, err := fe.Insert("performance_result", Row{Int(15), Int(1), Int(1), Int(1), Null(), Float(1)}); err != nil {
		t.Fatal(err)
	}
	if _, ok := fe.SegmentView("performance_result"); ok {
		t.Fatal("view survived an out-of-order insert")
	}
	// Checkpoint heals by rebuilding from scratch.
	if err := fe.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := fe.CompactSegments(); err != nil {
		t.Fatal(err)
	}
	v, ok := fe.SegmentView("performance_result")
	if !ok || v.Rows() != 4 {
		t.Fatalf("rebuilt view: ok=%v", ok)
	}
}

func TestTornSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	fe := openSegEngine(t, dir)
	if err := fe.CreateTable(resultSchema()); err != nil {
		t.Fatal(err)
	}
	insertResults(t, fe, 500)
	if err := fe.CompactSegments(); err != nil {
		t.Fatal(err)
	}
	if err := fe.Checkpoint(); err != nil { // truncate WAL: segments now load-bearing
		t.Fatal(err)
	}
	if err := fe.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, segmentSubdir, "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment files (err=%v)", err)
	}
	info, _ := os.Stat(segs[0])
	if err := os.Truncate(segs[0], info.Size()-5); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(dir); !errors.Is(err, ErrCorruptSegment) {
		t.Fatalf("torn segment: err = %v, want ErrCorruptSegment", err)
	}
}

func TestOpenFactoryKindsAndMarker(t *testing.T) {
	if eng, err := Open(KindMem, ""); err != nil || eng.Kind() != KindMem {
		t.Fatalf("mem open: %v", err)
	}
	if _, err := Open("bogus", t.TempDir()); err == nil {
		t.Fatal("bogus kind accepted")
	}

	dir := t.TempDir()
	fe := openSegEngine(t, dir)
	if fe.Kind() != KindSegment {
		t.Fatalf("kind = %q", fe.Kind())
	}
	fe.Close()
	// Explicit downgrade to wal must refuse (it would strand segment rows).
	if _, err := Open(KindWAL, dir); err == nil {
		t.Fatal("segment store opened as wal")
	}
	// Auto-detection keeps legacy call sites correct.
	for _, kind := range []string{"", KindSegment} {
		eng, err := Open(kind, dir)
		if err != nil || eng.Kind() != KindSegment {
			t.Fatalf("Open(%q): kind=%v err=%v", kind, eng, err)
		}
		eng.Close()
	}

	// Plain WAL store upgrades in place to segment.
	dir2 := t.TempDir()
	eng, err := Open(KindWAL, dir2)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.CreateTable(resultSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Insert("performance_result", resultRow(1)); err != nil {
		t.Fatal(err)
	}
	eng.Close()
	eng2, err := Open(KindSegment, dir2)
	if err != nil {
		t.Fatalf("upgrade: %v", err)
	}
	defer eng2.Close()
	if eng2.Kind() != KindSegment {
		t.Fatalf("kind after upgrade = %q", eng2.Kind())
	}
	tab, _ := eng2.Table("performance_result")
	if tab.Len() != 1 {
		t.Fatalf("rows after upgrade = %d", tab.Len())
	}
}

// FuzzSegment checks that arbitrary bytes never panic the segment
// decoder, that valid images round-trip, and that truncated (torn-tail)
// images are rejected.
func FuzzSegment(f *testing.F) {
	db := NewMem()
	schema := &Schema{
		Name: "fz",
		Columns: []Column{
			{Name: "id", Type: KindInt},
			{Name: "name", Type: KindString, Nullable: true},
			{Name: "v", Type: KindFloat},
			{Name: "ok", Type: KindBool},
		},
		PrimaryKey: []string{"id"},
	}
	if err := db.CreateTable(schema); err != nil {
		f.Fatal(err)
	}
	tab, _ := db.Table("fz")
	var ids []int64
	var rows []Row
	for i := 0; i < 9; i++ {
		row := Row{Int(int64(i * 3)), Str("w"), Float(float64(i)), Bool(i%2 == 0)}
		if i == 4 {
			row[1] = Null()
		}
		id, _ := db.Insert("fz", row)
		r, _ := tab.Get(id)
		ids = append(ids, id)
		rows = append(rows, r)
	}
	seg, err := buildSegment(tab, ids, rows)
	if err != nil {
		f.Fatal(err)
	}
	valid := encodeSegment(seg)
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	f.Add([]byte(segMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := decodeSegment(data)
		if err != nil {
			return
		}
		// A valid decode must re-encode to another valid image with
		// identical logical content.
		re, err := decodeSegment(encodeSegment(s))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if re.rows != s.rows || re.table != s.table {
			t.Fatalf("round trip changed shape: %d/%q vs %d/%q", re.rows, re.table, s.rows, s.table)
		}
		for i := 0; i < s.rows; i++ {
			if re.rowIDs[i] != s.rowIDs[i] || !rowsEqual(re.row(i), s.row(i)) {
				t.Fatalf("row %d changed in round trip", i)
			}
		}
		// Any truncation of a valid image must be rejected.
		if len(data) > 1 {
			if _, err := decodeSegment(data[:len(data)-1]); err == nil {
				t.Fatal("torn tail accepted")
			}
		}
	})
}
