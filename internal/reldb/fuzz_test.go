package reldb

import (
	"bytes"
	"testing"
)

// FuzzDecodeKey checks that arbitrary bytes never panic the key decoder,
// and that valid encodings round-trip with order preserved.
func FuzzDecodeKey(f *testing.F) {
	f.Add(EncodeKey(nil, Int(42), Str("x"), Float(1.5), Bool(true), Null()))
	f.Add([]byte{tagString, 0x00, 0x01})
	f.Add([]byte{tagInt, 1, 2, 3})
	f.Add([]byte{0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, err := DecodeKey(data)
		if err != nil {
			return
		}
		// Valid decodings must re-encode to the same bytes.
		re := EncodeKey(nil, vals...)
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode mismatch: %x vs %x", re, data)
		}
	})
}

// FuzzWALRecord checks that arbitrary bytes never panic the mutation
// decoder.
func FuzzWALRecord(f *testing.F) {
	f.Add(encodeMutationPayload(&mutation{op: opInsert, table: "t", id: 1,
		row: Row{Int(1), Str("x")}}))
	f.Add(encodeMutationPayload(&mutation{op: opCreateTable, schema: personSchema()}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeMutationPayload(data)
		if err != nil {
			return
		}
		// Valid mutations re-encode and re-decode consistently.
		re := encodeMutationPayload(m)
		if _, err := decodeMutationPayload(re); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}
