package reldb

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation.
type Column struct {
	Name     string
	Type     Kind
	Nullable bool
}

// ForeignKey declares that the values in Column must appear in the
// referenced table's referenced column (or be NULL if the column is
// nullable). Foreign keys are checked on insert and update.
type ForeignKey struct {
	Column    string // local column name
	RefTable  string
	RefColumn string
}

// IndexSpec declares a secondary index over one or more columns.
type IndexSpec struct {
	Name    string
	Columns []string
	Unique  bool
}

// Schema declares a table: its columns, primary key, foreign keys, and
// secondary indexes. The primary key is mandatory and unique.
type Schema struct {
	Name        string
	Columns     []Column
	PrimaryKey  []string
	ForeignKeys []ForeignKey
	Indexes     []IndexSpec
}

// ColumnIndex returns the position of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks the schema for internal consistency.
func (s *Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("reldb: schema has no name")
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("reldb: table %q has no columns", s.Name)
	}
	seen := make(map[string]bool, len(s.Columns))
	for _, c := range s.Columns {
		if c.Name == "" {
			return fmt.Errorf("reldb: table %q has an unnamed column", s.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("reldb: table %q: duplicate column %q", s.Name, c.Name)
		}
		seen[c.Name] = true
		switch c.Type {
		case KindInt, KindFloat, KindString, KindBool:
		default:
			return fmt.Errorf("reldb: table %q column %q: invalid type %v", s.Name, c.Name, c.Type)
		}
	}
	if len(s.PrimaryKey) == 0 {
		return fmt.Errorf("reldb: table %q has no primary key", s.Name)
	}
	for _, pk := range s.PrimaryKey {
		i := s.ColumnIndex(pk)
		if i < 0 {
			return fmt.Errorf("reldb: table %q: primary key column %q not found", s.Name, pk)
		}
		if s.Columns[i].Nullable {
			return fmt.Errorf("reldb: table %q: primary key column %q must not be nullable", s.Name, pk)
		}
	}
	for _, fk := range s.ForeignKeys {
		if s.ColumnIndex(fk.Column) < 0 {
			return fmt.Errorf("reldb: table %q: foreign key column %q not found", s.Name, fk.Column)
		}
		if fk.RefTable == "" || fk.RefColumn == "" {
			return fmt.Errorf("reldb: table %q: foreign key on %q has empty reference", s.Name, fk.Column)
		}
	}
	idxNames := make(map[string]bool, len(s.Indexes))
	for _, ix := range s.Indexes {
		if ix.Name == "" {
			return fmt.Errorf("reldb: table %q has an unnamed index", s.Name)
		}
		if idxNames[ix.Name] {
			return fmt.Errorf("reldb: table %q: duplicate index %q", s.Name, ix.Name)
		}
		idxNames[ix.Name] = true
		if len(ix.Columns) == 0 {
			return fmt.Errorf("reldb: table %q index %q has no columns", s.Name, ix.Name)
		}
		for _, col := range ix.Columns {
			if s.ColumnIndex(col) < 0 {
				return fmt.Errorf("reldb: table %q index %q: column %q not found", s.Name, ix.Name, col)
			}
		}
	}
	return nil
}

// CheckRow verifies that a row conforms to the schema's arity, types, and
// nullability.
func (s *Schema) CheckRow(r Row) error {
	if len(r) != len(s.Columns) {
		return fmt.Errorf("reldb: table %q: row has %d values, want %d", s.Name, len(r), len(s.Columns))
	}
	for i, v := range r {
		c := s.Columns[i]
		if v.IsNull() {
			if !c.Nullable {
				return fmt.Errorf("reldb: table %q: column %q is NOT NULL", s.Name, c.Name)
			}
			continue
		}
		if v.Kind() != c.Type {
			// Permit exact int literals in float columns.
			if c.Type == KindFloat && v.Kind() == KindInt {
				r[i] = Float(float64(v.Int64()))
				continue
			}
			return fmt.Errorf("reldb: table %q: column %q holds %v, got %v",
				s.Name, c.Name, c.Type, v.Kind())
		}
	}
	return nil
}

// DDL renders the schema as a CREATE TABLE statement (plus CREATE INDEX
// statements) in the SQL subset understood by package sqldb. It is used to
// print the live Figure 1 schema.
func (s *Schema) DDL() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE TABLE %s (\n", s.Name)
	for _, c := range s.Columns {
		fmt.Fprintf(&b, "  %s %s", c.Name, c.Type)
		if !c.Nullable {
			b.WriteString(" NOT NULL")
		}
		b.WriteString(",\n")
	}
	fmt.Fprintf(&b, "  PRIMARY KEY (%s)", strings.Join(s.PrimaryKey, ", "))
	for _, fk := range s.ForeignKeys {
		fmt.Fprintf(&b, ",\n  FOREIGN KEY (%s) REFERENCES %s (%s)",
			fk.Column, fk.RefTable, fk.RefColumn)
	}
	b.WriteString("\n);\n")
	for _, ix := range s.Indexes {
		unique := ""
		if ix.Unique {
			unique = "UNIQUE "
		}
		fmt.Fprintf(&b, "CREATE %sINDEX %s ON %s (%s);\n",
			unique, ix.Name, s.Name, strings.Join(ix.Columns, ", "))
	}
	return b.String()
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	c := &Schema{Name: s.Name}
	c.Columns = append([]Column(nil), s.Columns...)
	c.PrimaryKey = append([]string(nil), s.PrimaryKey...)
	c.ForeignKeys = append([]ForeignKey(nil), s.ForeignKeys...)
	for _, ix := range s.Indexes {
		c.Indexes = append(c.Indexes, IndexSpec{
			Name:    ix.Name,
			Columns: append([]string(nil), ix.Columns...),
			Unique:  ix.Unique,
		})
	}
	return c
}
