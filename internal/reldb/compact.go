package reldb

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The segment engine ("segment" storage kind) extends the WAL engine
// with a background compactor that drains committed WAL batches for the
// hot, bulk-scanned tables into immutable columnar segment files. The
// WAL remains the single source of truth: a segment only becomes
// load-bearing once the WAL records it covers are fsynced, the segment
// file itself is fsynced, and the manifest references it — and the WAL
// is only truncated at checkpoint, after all of that is durable.
//
// Invariants the scan path relies on (per hot table):
//
//	watermark   max row ID resident in any live segment; rows with
//	            higher IDs form the unflushed tail and are read from
//	            the B-tree.
//	ordered     inserts arrive in ascending first-PK order (true for
//	            PerfTrack's append-only result and link tables), so
//	            segments partition the PK space and every tail row's
//	            PK exceeds the flushed maximum. Violations set the
//	            unordered flag, which disables the columnar scan path
//	            (reads fall back to the B-tree) until a checkpoint
//	            rebuilds the segments from scratch.
//	dirty       an update/delete/replay-replace touched a flushed row,
//	            so some segment content is stale. Same fallback; the
//	            next checkpoint drops the segments, snapshots the full
//	            table, and starts over.

// segmentHotTables lists the bulk-scanned relations the segment engine
// compacts into columnar files. Everything else lives purely in the
// B-tree and the snapshot.
var segmentHotTables = []string{"performance_result", "result_has_focus", "focus_has_resource"}

const (
	segmentSubdir   = "segments"
	manifestFile    = "MANIFEST"
	defaultSegFlush = 4096
)

// errCompactBusy reports a compaction skipped because a write batch was
// open; the compactor retries shortly after.
var errCompactBusy = errors.New("reldb: compaction deferred: write batch open")

// segTable is the per-hot-table segment state.
type segTable struct {
	name string

	// Guarded by segState.mu. watermark/maxPK are additionally atomics
	// so the mutation path can read them without taking segState.mu.
	segs     []*segment
	segRows  int64
	segBytes int64

	watermark   atomic.Int64 // max row ID flushed into a live segment
	maxPK       atomic.Int64 // max first-PK value flushed
	flushingMax atomic.Int64 // max row ID in an in-flight compaction batch
	dirty       atomic.Bool
	unordered   atomic.Bool
	pendingN    atomic.Int64

	// Guarded by the owning DB's write lock (note runs under it).
	pending []int64 // unflushed row IDs in insert order
	lastPK  int64   // max first-PK value ever inserted
	havePK  bool
}

// segState is the segment-engine extension hung off a FileEngine.
type segState struct {
	fe     *FileEngine
	dir    string
	tables map[string]*segTable // fixed at construction; lock-free reads

	mu        sync.RWMutex // guards segTable.segs slices and counters
	compactMu sync.Mutex   // serializes compaction passes and checkpoints
	nextSeq   int64        // under compactMu

	flushRows   atomic.Int64
	compactions atomic.Uint64 // compaction passes that wrote segments
	segsWritten atomic.Uint64 // segment files written

	notify   chan struct{}
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	started  bool
}

func newSegState(fe *FileEngine) *segState {
	st := &segState{
		fe:     fe,
		dir:    filepath.Join(fe.dir, segmentSubdir),
		tables: make(map[string]*segTable, len(segmentHotTables)),
		notify: make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	st.flushRows.Store(defaultSegFlush)
	for _, name := range segmentHotTables {
		st.tables[name] = &segTable{name: name}
	}
	return st
}

// SetSegmentFlushRows sets how many unflushed tail rows a hot table
// accumulates before the background compactor drains it into a segment.
// No-op on non-segment engines.
func (fe *FileEngine) SetSegmentFlushRows(n int64) {
	if fe.seg != nil && n > 0 {
		fe.seg.flushRows.Store(n)
	}
}

// --- mutation tracking (called with the DB write lock held) ---

func (st *segState) note(m *mutation) {
	sg := st.tables[m.table]
	if sg == nil {
		return
	}
	switch m.op {
	case opInsert:
		if m.id <= sg.watermark.Load() {
			// Row-ID reuse below the watermark (transaction rollback
			// compensation): the flushed image may now be stale.
			sg.dirty.Store(true)
			return
		}
		st.notePK(sg, m.row)
		sg.pending = append(sg.pending, m.id)
		sg.pendingN.Add(1)
	case opUpdate, opDelete:
		if m.id <= sg.watermark.Load() || (sg.flushingMax.Load() > 0 && m.id <= sg.flushingMax.Load()) {
			sg.dirty.Store(true)
		}
	case opDropTable:
		sg.pending = nil
		sg.pendingN.Store(0)
		if sg.watermark.Load() > 0 {
			sg.dirty.Store(true)
		}
	}
}

func (st *segState) notePK(sg *segTable, row Row) {
	t := st.fe.tables[sg.name]
	if t == nil || len(t.pkCols) == 0 {
		sg.unordered.Store(true)
		return
	}
	v := row[t.pkCols[0]]
	if v.Kind() != KindInt {
		sg.unordered.Store(true)
		return
	}
	pk := v.Int64()
	if sg.havePK && pk < sg.lastPK {
		sg.unordered.Store(true)
	}
	if !sg.havePK || pk > sg.lastPK {
		sg.lastPK = pk
		sg.havePK = true
	}
}

// markDirtyBelow poisons the scan path when recovery replaces or
// removes a row at or below the table's flushed watermark.
func (st *segState) markDirtyBelow(table string, id int64) {
	if sg := st.tables[table]; sg != nil && id <= sg.watermark.Load() {
		sg.dirty.Store(true)
	}
}

// resetTable forgets a hot table's segments entirely (recovery replay
// of a DROP TABLE: the rows they held died with the table).
func (st *segState) resetTable(table string) {
	sg := st.tables[table]
	if sg == nil {
		return
	}
	st.mu.Lock()
	sg.segs = nil
	sg.segRows, sg.segBytes = 0, 0
	st.mu.Unlock()
	sg.watermark.Store(0)
	sg.maxPK.Store(0)
	sg.dirty.Store(false)
	sg.unordered.Store(false)
	sg.pending = nil
	sg.pendingN.Store(0)
	sg.lastPK, sg.havePK = 0, false
}

// maybeNotify wakes the compactor when any hot table's tail crossed the
// flush threshold. Non-blocking; safe under the DB lock.
func (st *segState) maybeNotify() {
	thr := st.flushRows.Load()
	for _, sg := range st.tables {
		if sg.pendingN.Load() >= thr {
			select {
			case st.notify <- struct{}{}:
			default:
			}
			return
		}
	}
}

// --- background compactor ---

func (st *segState) run() {
	defer close(st.done)
	for {
		select {
		case <-st.stop:
			return
		case <-st.notify:
		}
		if err := st.compact(st.flushRows.Load()); errors.Is(err, errCompactBusy) {
			// A write batch was open; retry shortly.
			select {
			case <-st.stop:
				return
			case <-time.After(20 * time.Millisecond):
			}
			select {
			case st.notify <- struct{}{}:
			default:
			}
		}
	}
}

func (st *segState) shutdown() {
	st.stopOnce.Do(func() {
		close(st.stop)
		if st.started {
			<-st.done
		}
	})
}

// CompactSegments synchronously drains every hot table's unflushed tail
// into columnar segments, regardless of the flush threshold. It returns
// errCompactBusy semantics as an error if a write batch is open. No-op
// on non-segment engines.
func (fe *FileEngine) CompactSegments() error {
	if fe.seg == nil {
		return nil
	}
	return fe.seg.compact(1)
}

// compact runs one compaction pass over every hot table whose tail has
// at least min rows, then rewrites the manifest once.
func (st *segState) compact(min int64) error {
	st.compactMu.Lock()
	defer st.compactMu.Unlock()
	wrote := false
	for _, name := range segmentHotTables {
		sg := st.tables[name]
		if sg.pendingN.Load() < min {
			continue
		}
		did, err := st.compactTable(sg)
		if err != nil {
			return err
		}
		wrote = wrote || did
	}
	if !wrote {
		return nil
	}
	st.compactions.Add(1)
	return st.writeManifest()
}

// compactTable flushes one table's tail into a new segment file:
// collect under the DB lock, fsync the WAL (truth first), encode and
// fsync the segment outside the lock, then publish watermark + segment
// atomically with respect to readers. Requires compactMu.
func (st *segState) compactTable(sg *segTable) (bool, error) {
	fe := st.fe

	fe.mu.Lock()
	if fe.batchDepth > 0 {
		fe.mu.Unlock()
		return false, errCompactBusy
	}
	if err := fe.walW.flush(); err != nil {
		fe.mu.Unlock()
		return false, err
	}
	t := fe.tables[sg.name]
	if t == nil {
		sg.pending = nil
		sg.pendingN.Store(0)
		fe.mu.Unlock()
		return false, nil
	}
	w := sg.watermark.Load()
	taken := sg.pending
	sg.pending = nil
	sg.pendingN.Store(0)
	seen := make(map[int64]struct{}, len(taken))
	ids := make([]int64, 0, len(taken))
	rows := make([]Row, 0, len(taken))
	maxID := int64(0)
	for _, id := range taken {
		if id <= w {
			continue
		}
		if _, dup := seen[id]; dup {
			continue
		}
		row, ok := t.rows[id]
		if !ok {
			continue // deleted before it was ever flushed
		}
		seen[id] = struct{}{}
		ids = append(ids, id)
		rows = append(rows, row)
		if id > maxID {
			maxID = id
		}
	}
	if len(ids) == 0 {
		fe.mu.Unlock()
		return false, nil
	}
	sg.flushingMax.Store(maxID)
	prevMaxPK := sg.maxPK.Load()
	hadSegs := sg.watermark.Load() > 0
	fe.mu.Unlock()

	requeue := func() {
		fe.mu.Lock()
		sg.flushingMax.Store(0)
		sg.pending = append(ids, sg.pending...)
		sg.pendingN.Store(int64(len(sg.pending)))
		fe.mu.Unlock()
	}

	// WAL is truth: its records must be durable before the segment that
	// mirrors them can ever be referenced.
	if err := fe.wal.Sync(); err != nil {
		requeue()
		return false, err
	}
	seg, err := buildSegment(t, ids, rows)
	if err != nil {
		requeue()
		return false, err
	}
	st.nextSeq++
	path := filepath.Join(st.dir, fmt.Sprintf("seg-%s-%08d.seg", sg.name, st.nextSeq))
	if err := writeSegmentFile(path, seg); err != nil {
		requeue()
		return false, err
	}

	fe.mu.Lock()
	if hadSegs && seg.minPK <= prevMaxPK {
		sg.unordered.Store(true)
	}
	st.mu.Lock()
	sg.watermark.Store(maxID)
	if seg.maxPK > sg.maxPK.Load() {
		sg.maxPK.Store(seg.maxPK)
	}
	sg.flushingMax.Store(0)
	sg.segs = append(sg.segs, seg)
	sg.segRows += int64(seg.rows)
	sg.segBytes += seg.sizeOn
	st.mu.Unlock()
	fe.mu.Unlock()
	st.segsWritten.Add(1)
	return true, nil
}

// --- manifest ---

// writeManifest atomically rewrites the manifest listing the live
// segment files per table. Safe with or without the DB lock held.
func (st *segState) writeManifest() error {
	type entry struct {
		name  string
		files []string
	}
	st.mu.RLock()
	entries := make([]entry, 0, len(segmentHotTables))
	for _, name := range segmentHotTables {
		sg := st.tables[name]
		e := entry{name: name}
		for _, s := range sg.segs {
			e.files = append(e.files, filepath.Base(s.file))
		}
		entries = append(entries, e)
	}
	st.mu.RUnlock()

	path := filepath.Join(st.dir, manifestFile)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("reldb: write manifest: %w", err)
	}
	rw := newRecordWriter(f)
	hdr := putUvarint(nil, 1) // version
	hdr = putVarint(hdr, st.nextSeq)
	if err := rw.writeRecord(hdr); err != nil {
		f.Close()
		return err
	}
	for _, e := range entries {
		p := putString(nil, e.name)
		p = putUvarint(p, uint64(len(e.files)))
		for _, file := range e.files {
			p = putString(p, file)
		}
		if err := rw.writeRecord(p); err != nil {
			f.Close()
			return err
		}
	}
	if err := rw.flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// load reads the manifest and its segment files, registering each
// segment and inserting its rows into tables that already exist (from
// the snapshot). Rows of tables created after the last checkpoint are
// still fully present in the WAL and arrive during replay. Runs after
// loadSnapshot and before replayWAL.
func (st *segState) load() error {
	if err := os.MkdirAll(st.dir, 0o755); err != nil {
		return fmt.Errorf("reldb: open %s: %w", st.dir, err)
	}
	f, err := os.Open(filepath.Join(st.dir, manifestFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("reldb: open manifest: %w", err)
	}
	defer f.Close()
	rr := newRecordReader(f)
	hdr, err := rr.readRecord()
	if err != nil {
		return fmt.Errorf("reldb: manifest: %w", err)
	}
	hp := &payloadReader{buf: hdr}
	if _, err := hp.uvarint(); err != nil { // version
		return fmt.Errorf("reldb: manifest: %w", err)
	}
	if st.nextSeq, err = hp.varint(); err != nil {
		return fmt.Errorf("reldb: manifest: %w", err)
	}
	for {
		payload, err := rr.readRecord()
		if err != nil {
			if errors.Is(err, ErrCorruptLog) {
				return fmt.Errorf("reldb: manifest: %w", err)
			}
			break // io.EOF
		}
		p := &payloadReader{buf: payload}
		name, err := p.str()
		if err != nil {
			return fmt.Errorf("reldb: manifest: %w", err)
		}
		n, err := p.uvarint()
		if err != nil {
			return fmt.Errorf("reldb: manifest: %w", err)
		}
		sg := st.tables[name]
		for i := uint64(0); i < n; i++ {
			file, err := p.str()
			if err != nil {
				return fmt.Errorf("reldb: manifest: %w", err)
			}
			seg, err := readSegmentFile(filepath.Join(st.dir, file))
			if err != nil {
				return err
			}
			if seg.table != name {
				return fmt.Errorf("%w: segment %s holds table %q, manifest says %q",
					ErrCorruptSegment, file, seg.table, name)
			}
			if sg == nil {
				continue // table no longer hot; orphan cleanup removes it
			}
			if err := st.loadSegmentRows(name, seg); err != nil {
				return err
			}
			sg.segs = append(sg.segs, seg)
			sg.segRows += int64(seg.rows)
			sg.segBytes += seg.sizeOn
			if seg.maxRowID > sg.watermark.Load() {
				sg.watermark.Store(seg.maxRowID)
			}
			if seg.maxPK > sg.maxPK.Load() {
				sg.maxPK.Store(seg.maxPK)
			}
		}
	}
	return nil
}

// loadSegmentRows reinserts a segment's rows into the B-tree under
// their original row IDs. Rows already present (the snapshot is newer,
// e.g. after a crash between snapshot rename and manifest rewrite) are
// skipped: later recovery layers win.
func (st *segState) loadSegmentRows(table string, seg *segment) error {
	fe := st.fe
	fe.mu.Lock()
	defer fe.mu.Unlock()
	t, ok := fe.tables[table]
	if !ok {
		return nil
	}
	for i := 0; i < seg.rows; i++ {
		id := seg.rowIDs[i]
		if _, exists := t.rows[id]; exists {
			continue
		}
		if err := t.insertAtLocked(id, seg.row(i)); err != nil {
			return fmt.Errorf("reldb: segment %s: %w", seg.file, err)
		}
	}
	return nil
}

// initAfterRecovery rebuilds the in-memory tail bookkeeping (pending
// row IDs, last-PK high-water mark, ordering flags) after the snapshot,
// segments, and WAL have all been applied, then starts from a
// consistent state.
func (st *segState) initAfterRecovery() {
	fe := st.fe
	fe.mu.Lock()
	defer fe.mu.Unlock()
	for _, name := range segmentHotTables {
		sg := st.tables[name]
		t := fe.tables[name]
		if t == nil {
			st.mu.Lock()
			sg.segs = nil
			sg.segRows, sg.segBytes = 0, 0
			st.mu.Unlock()
			sg.watermark.Store(0)
			sg.maxPK.Store(0)
			continue
		}
		intPK := len(t.pkCols) > 0 && t.schema.Columns[t.pkCols[0]].Type == KindInt
		if !intPK && len(sg.segs) > 0 {
			sg.unordered.Store(true)
		}
		for i := 1; i < len(sg.segs); i++ {
			if sg.segs[i].minPK <= sg.segs[i-1].maxPK {
				sg.unordered.Store(true)
			}
		}
		w := sg.watermark.Load()
		maxPK := sg.maxPK.Load()
		ids := make([]int64, 0)
		for id := range t.rows {
			if id > w {
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		sg.pending = ids
		sg.pendingN.Store(int64(len(ids)))
		if intPK {
			pkc := t.pkCols[0]
			last := maxPK
			have := len(sg.segs) > 0
			for _, id := range ids {
				pk := t.rows[id][pkc].Int64()
				if len(sg.segs) > 0 && pk <= maxPK {
					sg.unordered.Store(true)
				}
				if !have || pk > last {
					last = pk
					have = true
				}
			}
			sg.lastPK = last
			sg.havePK = have
		}
	}
}

// cleanOrphans removes segment files not referenced by any live
// segment — leftovers of crashed compactions or checkpoint drops.
func (st *segState) cleanOrphans() {
	live := make(map[string]bool)
	st.mu.RLock()
	for _, sg := range st.tables {
		for _, s := range sg.segs {
			live[filepath.Base(s.file)] = true
		}
	}
	st.mu.RUnlock()
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if name == manifestFile || live[name] {
			continue
		}
		if strings.HasSuffix(name, ".seg") || strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(st.dir, name))
		}
	}
}

// resetStaleLocked drops the segments of every dirty or unordered hot
// table so the checkpoint snapshot captures those tables in full and
// the next compaction rebuilds their segments from a clean, sorted
// slate. Called with the DB write lock and compactMu held; returns the
// dropped files for deletion after the manifest and WAL are rewritten.
func (st *segState) resetStaleLocked() []string {
	var dropped []string
	for _, name := range segmentHotTables {
		sg := st.tables[name]
		if !sg.dirty.Load() && !sg.unordered.Load() {
			continue
		}
		st.mu.Lock()
		for _, s := range sg.segs {
			dropped = append(dropped, s.file)
		}
		sg.segs = nil
		sg.segRows, sg.segBytes = 0, 0
		sg.watermark.Store(0)
		sg.maxPK.Store(0)
		st.mu.Unlock()
		sg.dirty.Store(false)
		sg.unordered.Store(false)
		// With the watermark reset, every row is tail again: queue the
		// full table so the next compaction writes one sorted segment.
		t := st.fe.tables[name]
		if t == nil {
			sg.pending = nil
			sg.pendingN.Store(0)
			sg.lastPK, sg.havePK = 0, false
			continue
		}
		ids := make([]int64, 0, len(t.rows))
		for id := range t.rows {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		sg.pending = ids
		sg.pendingN.Store(int64(len(ids)))
		if len(t.pkCols) > 0 && t.schema.Columns[t.pkCols[0]].Type == KindInt {
			pkc := t.pkCols[0]
			last, have := int64(0), false
			for _, row := range t.rows {
				if pk := row[pkc].Int64(); !have || pk > last {
					last, have = pk, true
				}
			}
			sg.lastPK, sg.havePK = last, have
		}
	}
	return dropped
}

// --- read-side view ---

// SegView is a consistent snapshot of one table's columnar segments.
// Segments are immutable, so the view stays valid for the duration of a
// scan even while the compactor publishes new ones.
type SegView struct {
	segs      []*segment
	watermark int64
	maxPK     int64
	rows      int64
}

// SegmentView returns the current columnar view of a hot table, or
// ok=false when the engine keeps no segments for it or the scan path is
// disabled (dirty or unordered state, or nothing flushed yet).
func (fe *FileEngine) SegmentView(table string) (*SegView, bool) {
	if fe.seg == nil {
		return nil, false
	}
	sg := fe.seg.tables[table]
	if sg == nil || sg.dirty.Load() || sg.unordered.Load() {
		return nil, false
	}
	fe.seg.mu.RLock()
	v := &SegView{
		segs:      sg.segs,
		watermark: sg.watermark.Load(),
		maxPK:     sg.maxPK.Load(),
		rows:      sg.segRows,
	}
	fe.seg.mu.RUnlock()
	if len(v.segs) == 0 || sg.dirty.Load() || sg.unordered.Load() {
		return nil, false
	}
	return v, true
}

// Rows reports the total segment-resident row count.
func (v *SegView) Rows() int64 { return v.rows }

// Segments reports the number of live segments in the view.
func (v *SegView) Segments() int { return len(v.segs) }

// TailRowID is the flushed watermark: rows with IDs above it are not in
// any segment and must be read from the B-tree tail.
func (v *SegView) TailRowID() int64 { return v.watermark }

// MaxPK is the largest first-primary-key value resident in a segment;
// under the ordered invariant every tail row's PK exceeds it.
func (v *SegView) MaxPK() int64 { return v.maxPK }

// ColumnBlock exposes one segment's decoded columns for scanning.
type ColumnBlock struct {
	seg *segment
}

// Len reports the number of rows in the block.
func (b ColumnBlock) Len() int { return b.seg.rows }

// RowIDs returns the block's row-ID column. Callers must not mutate it.
func (b ColumnBlock) RowIDs() []int64 { return b.seg.rowIDs }

// Int64s returns an integer column, or nil for other kinds.
func (b ColumnBlock) Int64s(col int) []int64 {
	if col < 0 || col >= len(b.seg.cols) {
		return nil
	}
	return b.seg.cols[col].ints
}

// Float64s returns a float column, or nil for other kinds.
func (b ColumnBlock) Float64s(col int) []float64 {
	if col < 0 || col >= len(b.seg.cols) {
		return nil
	}
	return b.seg.cols[col].floats
}

// Strings returns a string column, or nil for other kinds.
func (b ColumnBlock) Strings(col int) []string {
	if col < 0 || col >= len(b.seg.cols) {
		return nil
	}
	return b.seg.cols[col].strs
}

// Nulls returns the column's NULL bitmap, or nil when it has no NULLs.
func (b ColumnBlock) Nulls(col int) []bool {
	if col < 0 || col >= len(b.seg.cols) {
		return nil
	}
	return b.seg.cols[col].nulls
}

// DictCodes returns a string column's per-row dictionary codes, or nil
// for other kinds. Vectorized scans filter and group on these small
// integer codes and resolve them through DictWords only at final
// output. Callers must not mutate the slice.
func (b ColumnBlock) DictCodes(col int) []uint32 {
	if col < 0 || col >= len(b.seg.cols) {
		return nil
	}
	return b.seg.cols[col].codes
}

// DictWords returns a string column's code→value dictionary in code
// order, or nil for other kinds. Callers must not mutate the slice.
func (b ColumnBlock) DictWords(col int) []string {
	if col < 0 || col >= len(b.seg.cols) {
		return nil
	}
	return b.seg.cols[col].words
}

// ZoneInt64 returns an integer column's zone map (min/max over non-null
// values), or ok=false when the column has no valid zone. Vectorized
// group-by uses the maxima to size dense accumulator arrays.
func (b ColumnBlock) ZoneInt64(col int) (min, max int64, ok bool) {
	if col < 0 || col >= len(b.seg.zones) {
		return 0, 0, false
	}
	z := b.seg.zones[col]
	return z.minI, z.maxI, z.valid && b.seg.cols[col].kind == KindInt
}

// SizeBytes approximates the decoded bytes a full scan of the block
// touches.
func (b ColumnBlock) SizeBytes() int64 { return b.seg.decodedBytes() }

// ScanPKRange visits every segment whose first-primary-key zone map
// intersects [lo, hi], in flush (= ascending PK) order. Segments whose
// zone maps cannot intersect the range are pruned without touching
// their columns. It returns the number of pruned segments and the
// decoded bytes scanned; fn returns false to stop early.
func (v *SegView) ScanPKRange(lo, hi int64, fn func(b ColumnBlock) bool) (pruned int, bytes int64) {
	for _, s := range v.segs {
		if s.maxPK < lo || s.minPK > hi {
			pruned++
			continue
		}
		bytes += s.decodedBytes()
		if !fn(ColumnBlock{seg: s}) {
			break
		}
	}
	return pruned, bytes
}

// BlocksPKRange returns the blocks ScanPKRange would visit for [lo, hi],
// in flush (= ascending PK) order, plus the pruned-segment count and the
// decoded bytes the surviving blocks hold. Unlike the callback form it
// hands the caller the whole pruned list at once, so independent
// segments can fan out across a worker pool; the blocks stay valid for
// the life of the view because segments are immutable.
func (v *SegView) BlocksPKRange(lo, hi int64) (blocks []ColumnBlock, pruned int, bytes int64) {
	for _, s := range v.segs {
		if s.maxPK < lo || s.minPK > hi {
			pruned++
			continue
		}
		bytes += s.decodedBytes()
		blocks = append(blocks, ColumnBlock{seg: s})
	}
	return blocks, pruned, bytes
}

// --- stats ---

// SegmentTableStatus describes one hot table's segment state.
type SegmentTableStatus struct {
	Table       string `json:"table"`
	Segments    int    `json:"segments"`
	Rows        int64  `json:"rows"`
	Bytes       int64  `json:"bytes"`
	PendingRows int64  `json:"pending_rows"`
	Watermark   int64  `json:"watermark"`
	Dirty       bool   `json:"dirty"`
	Unordered   bool   `json:"unordered"`
}

// SegmentStats summarizes the segment engine's compaction state.
type SegmentStats struct {
	Enabled         bool                 `json:"enabled"`
	FlushRows       int64                `json:"flush_rows"`
	Compactions     uint64               `json:"compactions"`
	SegmentsWritten uint64               `json:"segments_written"`
	Tables          []SegmentTableStatus `json:"tables,omitempty"`
}

// SegmentStats reports compaction status; Enabled is false on the plain
// WAL engine.
func (fe *FileEngine) SegmentStats() SegmentStats {
	if fe.seg == nil {
		return SegmentStats{}
	}
	st := fe.seg
	out := SegmentStats{
		Enabled:         true,
		FlushRows:       st.flushRows.Load(),
		Compactions:     st.compactions.Load(),
		SegmentsWritten: st.segsWritten.Load(),
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	for _, name := range segmentHotTables {
		sg := st.tables[name]
		out.Tables = append(out.Tables, SegmentTableStatus{
			Table:       name,
			Segments:    len(sg.segs),
			Rows:        sg.segRows,
			Bytes:       sg.segBytes,
			PendingRows: sg.pendingN.Load(),
			Watermark:   sg.watermark.Load(),
			Dirty:       sg.dirty.Load(),
			Unordered:   sg.unordered.Load(),
		})
	}
	return out
}

// segmentBytes sums on-disk segment bytes across hot tables.
func (st *segState) segmentBytes() int64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var n int64
	for _, sg := range st.tables {
		n += sg.segBytes
	}
	return n
}
