package reldb

import (
	"fmt"
)

// Table holds the rows and indexes for one relation. All access is
// mediated by the owning DB, which provides locking; Table methods assume
// the caller holds the appropriate DB lock.
type Table struct {
	db     *DB
	schema *Schema

	rows   map[int64]Row // row ID -> row
	nextID int64         // next row ID / auto primary key

	primary *btree                 // encoded PK -> row ID
	indexes map[string]*tableIndex // secondary indexes by name

	pkCols    []int // column positions of the primary key
	dataBytes int64 // approximate stored data volume
	pkBytes   int64 // approximate primary B-tree key volume
}

type tableIndex struct {
	spec  IndexSpec
	cols  []int
	tree  *btree
	bytes int64 // approximate key volume held by this index
}

func newTable(db *DB, schema *Schema) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		db:      db,
		schema:  schema,
		rows:    make(map[int64]Row),
		nextID:  1,
		primary: newBTree(),
		indexes: make(map[string]*tableIndex),
	}
	for _, pk := range schema.PrimaryKey {
		t.pkCols = append(t.pkCols, schema.ColumnIndex(pk))
	}
	for _, spec := range schema.Indexes {
		if err := t.addIndex(spec); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func (t *Table) addIndex(spec IndexSpec) error {
	if _, dup := t.indexes[spec.Name]; dup {
		return fmt.Errorf("reldb: table %q: index %q already exists", t.schema.Name, spec.Name)
	}
	ix := &tableIndex{spec: spec, tree: newBTree()}
	for _, col := range spec.Columns {
		ix.cols = append(ix.cols, t.schema.ColumnIndex(col))
	}
	for id, row := range t.rows {
		if err := ix.insert(row, id); err != nil {
			return err
		}
	}
	t.indexes[spec.Name] = ix
	return nil
}

// key builds the index key for a row; non-unique indexes append the row ID
// to disambiguate duplicates.
func (ix *tableIndex) key(row Row, id int64) []byte {
	key := make([]byte, 0, 16*len(ix.cols))
	for _, c := range ix.cols {
		key = encodeValue(key, row[c])
	}
	if !ix.spec.Unique {
		key = encodeValue(key, Int(id))
	}
	return key
}

func (ix *tableIndex) insert(row Row, id int64) error {
	key := ix.key(row, id)
	if ix.spec.Unique {
		if _, exists := ix.tree.Get(key); exists {
			return fmt.Errorf("reldb: unique index %q violated", ix.spec.Name)
		}
	}
	ix.tree.Set(key, id)
	ix.bytes += int64(len(key)) + 8
	return nil
}

func (ix *tableIndex) remove(row Row, id int64) {
	key := ix.key(row, id)
	ix.tree.Delete(key)
	ix.bytes -= int64(len(key)) + 8
}

// Schema returns the table's schema. Callers must not mutate it.
func (t *Table) Schema() *Schema { return t.schema }

// pkKey encodes the primary key of a row.
func (t *Table) pkKey(row Row) []byte {
	key := make([]byte, 0, 16*len(t.pkCols))
	for _, c := range t.pkCols {
		key = encodeValue(key, row[c])
	}
	return key
}

func rowBytes(row Row) int64 {
	var n int64
	for _, v := range row {
		switch v.Kind() {
		case KindString:
			n += int64(len(v.Text())) + 4
		case KindNull:
			n++
		default:
			n += 8
		}
	}
	return n + 8 // row header
}

// insertLocked adds a row. If the primary key is a single integer column
// whose value is NULL, a fresh ID is assigned (sequence semantics). It
// returns the row ID, which equals the integer primary key when one is
// auto-assigned.
func (t *Table) insertLocked(row Row) (int64, error) {
	row = row.Clone()
	if len(t.pkCols) == 1 && t.schema.Columns[t.pkCols[0]].Type == KindInt && row[t.pkCols[0]].IsNull() {
		row[t.pkCols[0]] = Int(t.nextID)
	}
	if err := t.schema.CheckRow(row); err != nil {
		return 0, err
	}
	if err := t.db.checkForeignKeys(t.schema, row); err != nil {
		return 0, err
	}
	pk := t.pkKey(row)
	if _, exists := t.primary.Get(pk); exists {
		return 0, fmt.Errorf("reldb: table %q: duplicate primary key %s", t.schema.Name, row)
	}
	id := t.nextID
	t.nextID++
	// Keep nextID ahead of explicit integer primary keys.
	if len(t.pkCols) == 1 && row[t.pkCols[0]].Kind() == KindInt {
		if v := row[t.pkCols[0]].Int64(); v >= t.nextID {
			t.nextID = v + 1
		}
	}
	for _, ix := range t.indexes {
		if err := ix.insert(row, id); err != nil {
			// Roll back indexes already updated.
			for _, prev := range t.indexes {
				if prev == ix {
					break
				}
				prev.remove(row, id)
			}
			return 0, err
		}
	}
	t.rows[id] = row
	t.primary.Set(pk, id)
	t.dataBytes += rowBytes(row)
	t.pkBytes += int64(len(pk)) + 8
	return id, nil
}

func (t *Table) deleteLocked(id int64) (Row, error) {
	row, ok := t.rows[id]
	if !ok {
		return nil, fmt.Errorf("reldb: table %q: no row %d", t.schema.Name, id)
	}
	pk := t.pkKey(row)
	t.primary.Delete(pk)
	t.pkBytes -= int64(len(pk)) + 8
	for _, ix := range t.indexes {
		ix.remove(row, id)
	}
	delete(t.rows, id)
	t.dataBytes -= rowBytes(row)
	return row, nil
}

func (t *Table) updateLocked(id int64, row Row) (Row, error) {
	old, ok := t.rows[id]
	if !ok {
		return nil, fmt.Errorf("reldb: table %q: no row %d", t.schema.Name, id)
	}
	row = row.Clone()
	if err := t.schema.CheckRow(row); err != nil {
		return nil, err
	}
	if err := t.db.checkForeignKeys(t.schema, row); err != nil {
		return nil, err
	}
	newPK := t.pkKey(row)
	oldPK := t.pkKey(old)
	if string(newPK) != string(oldPK) {
		if _, exists := t.primary.Get(newPK); exists {
			return nil, fmt.Errorf("reldb: table %q: duplicate primary key %s", t.schema.Name, row)
		}
	}
	for _, ix := range t.indexes {
		ix.remove(old, id)
	}
	for _, ix := range t.indexes {
		if err := ix.insert(row, id); err != nil {
			// Restore the previous index state.
			for _, prev := range t.indexes {
				if prev == ix {
					break
				}
				prev.remove(row, id)
			}
			for _, prev := range t.indexes {
				_ = prev.insert(old, id)
			}
			return nil, err
		}
	}
	t.primary.Delete(oldPK)
	t.primary.Set(newPK, id)
	t.rows[id] = row
	t.dataBytes += rowBytes(row) - rowBytes(old)
	t.pkBytes += int64(len(newPK)) - int64(len(oldPK))
	return old, nil
}

// indexBytesLocked approximates the key bytes held by the primary
// B-tree and every secondary index.
func (t *Table) indexBytesLocked() int64 {
	n := t.pkBytes
	for _, ix := range t.indexes {
		n += ix.bytes
	}
	return n
}

// Len reports the number of rows. It takes the DB read lock.
func (t *Table) Len() int {
	t.db.mu.RLock()
	defer t.db.mu.RUnlock()
	return len(t.rows)
}

// DataBytes reports the approximate stored data volume in bytes.
func (t *Table) DataBytes() int64 {
	t.db.mu.RLock()
	defer t.db.mu.RUnlock()
	return t.dataBytes
}

// Get returns the row with the given row ID.
func (t *Table) Get(id int64) (Row, bool) {
	t.db.mu.RLock()
	defer t.db.mu.RUnlock()
	row, ok := t.rows[id]
	if !ok {
		return nil, false
	}
	return row.Clone(), true
}

// GetByPK returns the row whose primary key columns equal key.
func (t *Table) GetByPK(key ...Value) (Row, int64, bool) {
	t.db.mu.RLock()
	defer t.db.mu.RUnlock()
	id, ok := t.primary.Get(EncodeKey(nil, key...))
	if !ok {
		return nil, 0, false
	}
	return t.rows[id].Clone(), id, true
}

// Scan visits every row in primary-key order. The visitor must not mutate
// the table; it returns false to stop.
func (t *Table) Scan(fn func(id int64, row Row) bool) {
	t.db.mu.RLock()
	defer t.db.mu.RUnlock()
	t.primary.Ascend(nil, nil, func(_ []byte, id int64) bool {
		return fn(id, t.rows[id])
	})
}

// PKScan visits rows whose leading primary-key columns equal the given
// prefix values, in primary-key order. Composite-key link tables use this
// for efficient prefix lookups without a secondary index.
func (t *Table) PKScan(prefix []Value, fn func(id int64, row Row) bool) error {
	t.db.mu.RLock()
	defer t.db.mu.RUnlock()
	if len(prefix) > len(t.pkCols) {
		return fmt.Errorf("reldb: table %q: PK prefix has %d values, key has %d columns",
			t.schema.Name, len(prefix), len(t.pkCols))
	}
	lo := EncodeKey(nil, prefix...)
	var hi []byte
	if len(lo) > 0 {
		hi = prefixUpperBound(lo)
	}
	if len(lo) == 0 {
		lo = nil
	}
	t.primary.Ascend(lo, hi, func(_ []byte, id int64) bool {
		return fn(id, t.rows[id])
	})
	return nil
}

// PKRange visits rows whose encoded primary key k satisfies lo <= k < hi
// in primary-key order; nil bounds are unbounded. The materializer's
// segment path uses it to walk the unflushed tail of a hot table,
// starting just past the flushed primary-key maximum.
func (t *Table) PKRange(lo, hi []Value, fn func(id int64, row Row) bool) {
	t.db.mu.RLock()
	defer t.db.mu.RUnlock()
	var loKey, hiKey []byte
	if len(lo) > 0 {
		loKey = EncodeKey(nil, lo...)
	}
	if len(hi) > 0 {
		hiKey = EncodeKey(nil, hi...)
	}
	t.primary.Ascend(loKey, hiKey, func(_ []byte, id int64) bool {
		return fn(id, t.rows[id])
	})
}

// IndexScan visits rows whose index-key prefix equals the given values, in
// index order. The named index must exist.
func (t *Table) IndexScan(index string, prefix []Value, fn func(id int64, row Row) bool) error {
	t.db.mu.RLock()
	defer t.db.mu.RUnlock()
	ix, ok := t.indexes[index]
	if !ok {
		return fmt.Errorf("reldb: table %q: no index %q", t.schema.Name, index)
	}
	if len(prefix) > len(ix.cols) {
		return fmt.Errorf("reldb: table %q index %q: prefix has %d values, index has %d columns",
			t.schema.Name, index, len(prefix), len(ix.cols))
	}
	lo := EncodeKey(nil, prefix...)
	var hi []byte
	if len(lo) > 0 {
		hi = prefixUpperBound(lo)
	}
	if len(lo) == 0 {
		lo = nil
	}
	ix.tree.Ascend(lo, hi, func(_ []byte, id int64) bool {
		return fn(id, t.rows[id])
	})
	return nil
}

// IndexRange visits rows whose single-column index value v satisfies
// lo <= v < hi (NULL bounds mean unbounded).
func (t *Table) IndexRange(index string, lo, hi Value, fn func(id int64, row Row) bool) error {
	t.db.mu.RLock()
	defer t.db.mu.RUnlock()
	ix, ok := t.indexes[index]
	if !ok {
		return fmt.Errorf("reldb: table %q: no index %q", t.schema.Name, index)
	}
	var loKey, hiKey []byte
	if !lo.IsNull() {
		loKey = EncodeKey(nil, lo)
	}
	if !hi.IsNull() {
		hiKey = EncodeKey(nil, hi)
	}
	ix.tree.Ascend(loKey, hiKey, func(_ []byte, id int64) bool {
		return fn(id, t.rows[id])
	})
	return nil
}

// HasIndex reports whether the table has an index with the given name.
func (t *Table) HasIndex(name string) bool {
	t.db.mu.RLock()
	defer t.db.mu.RUnlock()
	_, ok := t.indexes[name]
	return ok
}

// IndexOnColumns returns the name of an index whose leading columns equal
// cols, preferring unique indexes, or "" if none exists.
func (t *Table) IndexOnColumns(cols ...string) string {
	t.db.mu.RLock()
	defer t.db.mu.RUnlock()
	best := ""
	for name, ix := range t.indexes {
		if len(ix.spec.Columns) < len(cols) {
			continue
		}
		match := true
		for i, c := range cols {
			if ix.spec.Columns[i] != c {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		if best == "" || (ix.spec.Unique && !t.indexes[best].spec.Unique) ||
			(ix.spec.Unique == t.indexes[best].spec.Unique && name < best) {
			best = name
		}
	}
	return best
}
