package reldb

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestKeyRoundTrip(t *testing.T) {
	tuples := [][]Value{
		{},
		{Null()},
		{Int(0)},
		{Int(-1), Int(1)},
		{Int(math.MaxInt64), Int(math.MinInt64)},
		{Float(0), Float(-0.0), Float(math.Inf(1)), Float(math.Inf(-1))},
		{Str(""), Str("a"), Str("with\x00nul"), Str("\x00\x00")},
		{Bool(true), Bool(false)},
		{Str("mixed"), Int(5), Float(2.5), Bool(true), Null()},
	}
	for _, tuple := range tuples {
		enc := EncodeKey(nil, tuple...)
		dec, err := DecodeKey(enc)
		if err != nil {
			t.Fatalf("DecodeKey(%x): %v", enc, err)
		}
		if len(dec) != len(tuple) {
			t.Fatalf("round trip %v: got %v", tuple, dec)
		}
		for i := range tuple {
			// -0.0 and 0.0 compare equal; that is acceptable.
			if Compare(dec[i], tuple[i]) != 0 {
				t.Errorf("round trip %v: index %d got %v", tuple, i, dec[i])
			}
		}
	}
}

func TestKeyOrderPreservingInts(t *testing.T) {
	f := func(a, b int64) bool {
		ka := EncodeKey(nil, Int(a))
		kb := EncodeKey(nil, Int(b))
		return sign(bytes.Compare(ka, kb)) == sign(Compare(Int(a), Int(b)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyOrderPreservingFloats(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ka := EncodeKey(nil, Float(a))
		kb := EncodeKey(nil, Float(b))
		return sign(bytes.Compare(ka, kb)) == sign(Compare(Float(a), Float(b)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyOrderPreservingStrings(t *testing.T) {
	f := func(a, b string) bool {
		ka := EncodeKey(nil, Str(a))
		kb := EncodeKey(nil, Str(b))
		return sign(bytes.Compare(ka, kb)) == sign(Compare(Str(a), Str(b)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyOrderPreservingTuples(t *testing.T) {
	f := func(a1 string, a2 int64, b1 string, b2 int64) bool {
		ka := EncodeKey(nil, Str(a1), Int(a2))
		kb := EncodeKey(nil, Str(b1), Int(b2))
		want := Compare(Str(a1), Str(b1))
		if want == 0 {
			want = Compare(Int(a2), Int(b2))
		}
		return sign(bytes.Compare(ka, kb)) == sign(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyStringPrefixOrdering(t *testing.T) {
	// "ab" < "ab\x00" < "abc" must hold in the encoding too.
	ks := [][]byte{
		EncodeKey(nil, Str("ab")),
		EncodeKey(nil, Str("ab\x00")),
		EncodeKey(nil, Str("abc")),
	}
	for i := 0; i < len(ks)-1; i++ {
		if bytes.Compare(ks[i], ks[i+1]) >= 0 {
			t.Errorf("key %d not < key %d", i, i+1)
		}
	}
}

func TestKeyStringRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		dec, err := DecodeKey(EncodeKey(nil, Str(s)))
		return err == nil && len(dec) == 1 && dec[0].Text() == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyNullSortsFirstEncoded(t *testing.T) {
	null := EncodeKey(nil, Null())
	for _, v := range []Value{Int(math.MinInt64), Float(math.Inf(-1)), Str(""), Bool(false)} {
		if bytes.Compare(null, EncodeKey(nil, v)) >= 0 {
			t.Errorf("encoded NULL should sort before %v", v)
		}
	}
}

func TestDecodeKeyMalformed(t *testing.T) {
	bad := [][]byte{
		{tagInt},                // truncated int
		{tagFloat, 1, 2, 3},     // truncated float
		{tagString, 'a'},        // unterminated string
		{tagString, 0x00},       // truncated escape
		{tagString, 0x00, 0x02}, // invalid escape
		{tagBool},               // truncated bool
		{0x77},                  // unknown tag
	}
	for _, enc := range bad {
		if _, err := DecodeKey(enc); err == nil {
			t.Errorf("DecodeKey(%x) should fail", enc)
		}
	}
}

func TestPrefixUpperBound(t *testing.T) {
	cases := []struct {
		in   []byte
		want []byte
	}{
		{[]byte{0x01}, []byte{0x02}},
		{[]byte{0x01, 0xFF}, []byte{0x02}},
		{[]byte{0xFF, 0xFF}, nil},
		{[]byte{0x00, 0x10}, []byte{0x00, 0x11}},
	}
	for _, c := range cases {
		got := prefixUpperBound(c.in)
		if !bytes.Equal(got, c.want) {
			t.Errorf("prefixUpperBound(%x) = %x, want %x", c.in, got, c.want)
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}
