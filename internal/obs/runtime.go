package obs

import (
	"runtime"
	"sync"
	"time"
)

// memStatsCache amortizes runtime.ReadMemStats across the gauges that
// read from it: ReadMemStats stops the world briefly, so a single
// scrape touching four heap gauges should pay for it once, not four
// times.
type memStatsCache struct {
	mu      sync.Mutex
	stats   runtime.MemStats
	fetched time.Time
}

func (c *memStatsCache) get() *runtime.MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if time.Since(c.fetched) > time.Second {
		runtime.ReadMemStats(&c.stats)
		c.fetched = time.Now()
	}
	return &c.stats
}

// RegisterRuntimeMetrics registers Go runtime gauges (goroutines, heap
// bytes, GC pause totals, GC cycles) on the registry.
func RegisterRuntimeMetrics(r *Registry) {
	cache := &memStatsCache{}
	r.GaugeFunc("go_goroutines", "Number of live goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.", func() float64 {
		return float64(cache.get().HeapAlloc)
	})
	r.GaugeFunc("go_heap_objects", "Number of allocated heap objects.", func() float64 {
		return float64(cache.get().HeapObjects)
	})
	r.GaugeFunc("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time in seconds.", func() float64 {
		return float64(cache.get().PauseTotalNs) / 1e9
	})
	r.CounterFunc("go_gc_cycles_total", "Completed GC cycles.", func() uint64 {
		return uint64(cache.get().NumGC)
	})
}
