package obs

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// TestExemplarReplacement pins the slot policy: the bucket keeps its
// worst recent observation, so a smaller value never displaces a larger
// one inside the TTL, a larger value always does, and an empty trace ID
// records the observation without touching the slot.
func TestExemplarReplacement(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.ObserveExemplar(0.5, "a")
	h.ObserveExemplar(0.3, "b") // smaller: ignored
	if ex := h.BucketExemplars()[0]; ex == nil || ex.TraceID != "a" || ex.Value != 0.5 {
		t.Fatalf("after smaller observation: %+v, want a/0.5", ex)
	}
	h.ObserveExemplar(0.7, "c") // larger: takes the slot
	if ex := h.BucketExemplars()[0]; ex == nil || ex.TraceID != "c" || ex.Value != 0.7 {
		t.Fatalf("after larger observation: %+v, want c/0.7", ex)
	}
	h.ObserveExemplar(0.9, "") // no trace: counted, slot untouched
	if ex := h.BucketExemplars()[0]; ex == nil || ex.TraceID != "c" {
		t.Fatalf("empty trace ID touched the slot: %+v", ex)
	}
	if h.Count() != 4 {
		t.Errorf("Count = %d, want 4 (every call observes)", h.Count())
	}
	// Buckets are independent slots.
	if ex := h.BucketExemplars()[1]; ex != nil {
		t.Errorf("+Inf bucket has an exemplar with no overflow observations: %+v", ex)
	}
	h.ObserveExemplar(2, "inf")
	if ex := h.BucketExemplars()[1]; ex == nil || ex.TraceID != "inf" {
		t.Errorf("+Inf bucket exemplar = %+v, want inf", ex)
	}
}

// TestExemplarTTLExpiry forces the holder's timestamp into the past and
// checks a smaller fresh observation may then take the slot.
func TestExemplarTTLExpiry(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.ObserveExemplar(0.9, "old")
	ex := h.BucketExemplars()[0]
	ex.Unix -= int64(exemplarTTL.Seconds()) + 1 // age the holder in place
	h.exemplars[0].Store(ex)
	h.ObserveExemplar(0.1, "fresh")
	if got := h.BucketExemplars()[0]; got == nil || got.TraceID != "fresh" {
		t.Fatalf("stale exemplar survived a fresh observation: %+v", got)
	}
}

// TestExemplarEscaping checks a hostile trace ID is escaped on the wire
// exactly once (no double-escaping), the line still parses, and the
// exemplar only appears on OpenMetrics output — the plain 0.0.4 parser
// rejects trailing content after a sample value, so WritePrometheus
// must stay exemplar-free.
func TestExemplarEscaping(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("esc_seconds", "Escaping.", []float64{1})
	h.ObserveExemplar(0.5, "id\"with\\tricks\nnewline")
	var buf bytes.Buffer
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := `# {trace_id="id\"with\\tricks\nnewline"}`
	if !strings.Contains(out, want) {
		t.Fatalf("OpenMetrics exposition missing escaped exemplar %q:\n%s", want, out)
	}
	if strings.Contains(out, "\\\\\"") || strings.Count(out, "\n\n") > 0 {
		t.Errorf("escaping artifacts in exposition:\n%s", out)
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("OpenMetrics exposition not terminated by # EOF:\n%s", out)
	}
	buf.Reset()
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if plain := buf.String(); strings.Contains(plain, "# {") || strings.Contains(plain, "# EOF") {
		t.Errorf("0.0.4 exposition carries OpenMetrics-only syntax:\n%s", plain)
	}
}

// parseExposition splits an exposition body into comment and sample
// lines per family, preserving order.
type familyBlock struct {
	help, typ int // line counts
	samples   []string
}

func parseExposition(t *testing.T, body string) map[string]*familyBlock {
	t.Helper()
	fams := make(map[string]*familyBlock)
	get := func(name string) *familyBlock {
		// A sample of histogram family X arrives as X_bucket/X_sum/X_count.
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name {
				if _, ok := fams[base]; ok {
					name = base
					break
				}
			}
		}
		if fams[name] == nil {
			fams[name] = &familyBlock{}
		}
		return fams[name]
	}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" {
			t.Fatalf("blank line in exposition")
		}
		fields := strings.Fields(line)
		switch {
		case strings.HasPrefix(line, "# HELP "):
			get(fields[2]).help++
		case strings.HasPrefix(line, "# TYPE "):
			fb := get(fields[2])
			fb.typ++
			if fb.help > 0 && len(fb.samples) > 0 {
				t.Errorf("TYPE for %s after its samples", fields[2])
			}
		case line == "# EOF":
			// OpenMetrics terminator; appears at most once, at the end.
		case strings.HasPrefix(line, "#"):
			t.Fatalf("unknown comment line: %s", line)
		default:
			name := fields[0]
			if i := strings.IndexByte(name, '{'); i >= 0 {
				name = name[:i]
			}
			fb := get(name)
			if fb.typ == 0 {
				t.Errorf("sample before TYPE: %s", line)
			}
			fb.samples = append(fb.samples, line)
		}
	}
	return fams
}

// TestExpositionStrict renders a mixed registry in both formats and
// checks the invariants a strict scraper depends on: one HELP and one
// TYPE per family, comments before samples, buckets cumulative and
// monotone, the +Inf bucket equal to _count, _sum/_count present per
// series — and exemplars confined to the OpenMetrics body.
func TestExpositionStrict(t *testing.T) {
	r := NewRegistry()
	r.Counter("strict_events_total", "Events.").Add(7)
	r.Gauge("strict_depth", "Depth.").Set(3.5)
	hv := r.HistogramVec("strict_latency_seconds", "Latency.", []float64{0.1, 1}, "route")
	for _, v := range []float64{0.05, 0.5, 0.5, 2} {
		hv.With("/a").ObserveExemplar(v, "trace-a")
	}
	hv.With("/b").Observe(0.01)

	var plain, om bytes.Buffer
	if err := r.WritePrometheus(&plain); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), " # {") || strings.Contains(plain.String(), "# EOF") {
		t.Errorf("plain 0.0.4 exposition carries OpenMetrics-only syntax:\n%s", plain.String())
	}
	if !strings.Contains(om.String(), `# {trace_id="trace-a"}`) {
		t.Errorf("OpenMetrics exposition missing the trace-a exemplar:\n%s", om.String())
	}
	if !strings.HasSuffix(om.String(), "# EOF\n") {
		t.Errorf("OpenMetrics exposition not terminated by # EOF:\n%s", om.String())
	}
	checkStrict(t, plain.String())
	checkStrict(t, om.String())
}

func checkStrict(t *testing.T, body string) {
	t.Helper()
	fams := parseExposition(t, body)
	for _, name := range []string{"strict_events_total", "strict_depth", "strict_latency_seconds"} {
		fb := fams[name]
		if fb == nil {
			t.Fatalf("family %s missing from exposition:\n%s", name, body)
		}
		if fb.help != 1 || fb.typ != 1 {
			t.Errorf("%s: %d HELP / %d TYPE lines, want exactly 1 each", name, fb.help, fb.typ)
		}
		if len(fb.samples) == 0 {
			t.Errorf("%s: no samples", name)
		}
	}

	// Histogram invariants, per labelled series.
	for _, route := range []string{"/a", "/b"} {
		var cum []uint64
		var infCount, count uint64
		var haveSum, haveCount, haveInf bool
		for _, line := range fams["strict_latency_seconds"].samples {
			if !strings.Contains(line, `route="`+route+`"`) && !strings.HasPrefix(line, "strict_latency_seconds_sum{route=\""+route) &&
				!strings.HasPrefix(line, "strict_latency_seconds_count{route=\""+route) {
				continue
			}
			// Strip any exemplar before reading the sample value.
			sample := line
			if i := strings.Index(sample, " # "); i >= 0 {
				sample = sample[:i]
			}
			fields := strings.Fields(sample)
			v, err := strconv.ParseUint(fields[len(fields)-1], 10, 64)
			isSum := strings.HasPrefix(line, "strict_latency_seconds_sum")
			if err != nil && !isSum {
				t.Fatalf("unparseable sample value in %q: %v", line, err)
			}
			switch {
			case isSum:
				haveSum = true
			case strings.HasPrefix(line, "strict_latency_seconds_count"):
				haveCount, count = true, v
			case strings.Contains(line, `le="+Inf"`):
				haveInf, infCount = true, v
				cum = append(cum, v)
			default:
				cum = append(cum, v)
			}
		}
		if !haveSum || !haveCount || !haveInf {
			t.Fatalf("series %s missing _sum/_count/+Inf: sum=%v count=%v inf=%v", route, haveSum, haveCount, haveInf)
		}
		if infCount != count {
			t.Errorf("series %s: +Inf bucket %d != _count %d", route, infCount, count)
		}
		for i := 1; i < len(cum); i++ {
			if cum[i] < cum[i-1] {
				t.Errorf("series %s: buckets not cumulative: %v", route, cum)
			}
		}
	}

	// Families render in sorted order so scrapes diff cleanly.
	var order []string
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			order = append(order, strings.Fields(line)[2])
		}
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Errorf("families out of order: %v", order)
		}
	}
}
