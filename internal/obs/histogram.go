package obs

import (
	"bufio"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency bounds in seconds, resolving both
// sub-millisecond cached lookups and multi-second streamed loads.
var DefBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Histogram counts observations into fixed buckets. Observe is lock-free
// (one atomic add per bucket plus a CAS loop for the sum) and safe for
// concurrent use; rendering and quantile estimation read a snapshot, so
// a scrape racing observations sees per-bucket counts that are each
// individually consistent (the standard Prometheus trade-off).
type Histogram struct {
	bounds    []float64       // ascending upper bounds
	counts    []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	count     atomic.Uint64
	sumBits   atomic.Uint64
	exemplars []atomic.Pointer[Exemplar] // len(bounds)+1, parallel to counts
}

// Exemplar links one bucket to the trace that produced its worst recent
// observation, exposed on OpenMetrics scrapes of /metrics in the
// exemplar syntax so a latency spike in a bucket can be chased straight
// to a trace ID.
type Exemplar struct {
	TraceID string
	Value   float64
	Unix    int64 // seconds; exemplars older than exemplarTTL are replaceable
}

// exemplarTTL bounds how long a large observation shadows smaller ones:
// after this long any fresh observation may take the slot, so exemplars
// stay "recent" rather than pinning an all-time worst case.
const exemplarTTL = 60 * time.Second

// NewHistogram returns a histogram over the given ascending upper
// bounds; +Inf is implicit. Nil or empty bounds use DefBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", bounds))
		}
	}
	return &Histogram{
		bounds:    append([]float64(nil), bounds...),
		counts:    make([]atomic.Uint64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveExemplar records one value and, when traceID is non-empty,
// offers it as the exemplar for the bucket the observation fell into.
// The slot keeps the worst (largest) observation seen recently: a new
// observation takes it when it is larger than the current holder or the
// holder is older than exemplarTTL. Lock-free; a lost CAS race just
// drops one candidate exemplar, never an observation.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	now := time.Now().Unix()
	cur := h.exemplars[i].Load()
	if cur != nil && cur.Value >= v && now-cur.Unix < int64(exemplarTTL/time.Second) {
		return
	}
	h.exemplars[i].CompareAndSwap(cur, &Exemplar{TraceID: traceID, Value: v, Unix: now})
}

// BucketExemplars returns the current exemplar per bucket (nil when the
// bucket has none), parallel to Buckets' bounds plus a final +Inf slot.
func (h *Histogram) BucketExemplars() []*Exemplar {
	out := make([]*Exemplar, len(h.exemplars))
	for i := range h.exemplars {
		out[i] = h.exemplars[i].Load()
	}
	return out
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Buckets returns the upper bounds and the cumulative count at each
// bound, plus the total (the +Inf count).
func (h *Histogram) Buckets() (bounds []float64, cumulative []uint64, total uint64) {
	bounds = h.bounds
	cumulative = make([]uint64, len(h.bounds))
	var c uint64
	for i := range h.bounds {
		c += h.counts[i].Load()
		cumulative[i] = c
	}
	total = c + h.counts[len(h.bounds)].Load()
	return bounds, cumulative, total
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation within the bucket containing the target rank — the same
// estimate Prometheus's histogram_quantile computes. Observations in
// the +Inf bucket clamp to the highest finite bound. An empty histogram
// returns NaN.
func (h *Histogram) Quantile(q float64) float64 {
	bounds, cum, total := h.Buckets()
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	for i, ub := range bounds {
		if float64(cum[i]) >= rank {
			lo := 0.0
			var below uint64
			if i > 0 {
				lo = bounds[i-1]
				below = cum[i-1]
			}
			inBucket := cum[i] - below
			if inBucket == 0 {
				return ub
			}
			return lo + (ub-lo)*(rank-float64(below))/float64(inBucket)
		}
	}
	// Target rank falls in the +Inf bucket.
	return bounds[len(bounds)-1]
}

// writeSeries renders the _bucket/_sum/_count series with the given
// extra labels. When exemplars is true (the OpenMetrics format, the
// only format they are legal in), buckets holding an exemplar carry it
// in the exemplar syntax (`... # {trace_id="..."} value timestamp`);
// the plain 0.0.4 output stays exemplar-free because that parser
// rejects any trailing content after the sample value.
func (h *Histogram) writeSeries(w *bufio.Writer, name string, labels, values []string, exemplars bool) {
	bounds, cum, total := h.Buckets()
	sfx := func(i int) string {
		if !exemplars {
			return ""
		}
		return exemplarSuffix(h.exemplars[i].Load())
	}
	bLabels := append(append([]string(nil), labels...), "le")
	for i, ub := range bounds {
		bVals := append(append([]string(nil), values...), strconv.FormatFloat(ub, 'g', -1, 64))
		fmt.Fprintf(w, "%s_bucket%s %d%s\n", name, labelString(bLabels, bVals), cum[i], sfx(i))
	}
	infVals := append(append([]string(nil), values...), "+Inf")
	fmt.Fprintf(w, "%s_bucket%s %d%s\n", name, labelString(bLabels, infVals), total, sfx(len(h.exemplars)-1))
	suffix := ""
	if len(labels) > 0 {
		suffix = labelString(labels, values)
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, suffix, formatValue(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, total)
}

// exemplarSuffix renders one exemplar for appending to a _bucket line,
// or "" when the bucket has none.
func exemplarSuffix(e *Exemplar) string {
	if e == nil {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=\"%s\"} %s %d", escapeLabel(e.TraceID), formatValue(e.Value), e.Unix)
}
