package selfmon

import (
	"bytes"
	"context"
	"strconv"
	"testing"
	"time"

	"perftrack/internal/datastore"
	"perftrack/internal/reldb"
)

// TestWriteDocRoundTrip checks that one sample's PTdf document loads
// cleanly into a fresh store with its execution, attributes, and
// results intact.
func TestWriteDocRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	err := WriteDoc(&buf, DocSpec{App: "ptserved", Exec: "ptserved-sample-000001", Host: "h1"}, Sample{
		Metrics: []Metric{
			{Name: "request latency mean", Value: 0.012, Units: "seconds"},
			{Name: "requests", Value: 42, Units: "requests"},
		},
		Attrs: [][2]string{{"in_flight", "3"}, {"goroutines", "25"}},
	})
	if err != nil {
		t.Fatalf("WriteDoc: %v", err)
	}
	st, err := datastore.Open(reldb.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := st.LoadPTdf(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("sample doc does not load: %v\n%s", err, buf.String())
	}
	if stats.Executions != 1 || stats.Results != 2 || stats.Attributes != 2 {
		t.Errorf("load stats = %+v, want 1 execution, 2 results, 2 attributes", stats)
	}
}

// fakeCollect builds a Collect hook whose latency and planted attribute
// are swappable mid-run, standing in for a server whose recent requests
// turned slow.
type fakeCollect struct {
	latency float64
	slow    int
}

func (f *fakeCollect) sample() Sample {
	return Sample{
		Metrics: []Metric{
			{Name: "request latency mean", Value: f.latency, Units: "seconds"},
			{Name: "requests", Value: 10, Units: "requests"},
		},
		Attrs: [][2]string{
			{"slow_traces_delta", strconv.Itoa(f.slow)},
			{"in_flight", "2"},
		},
	}
}

// TestSamplerDiagnosePlantedSlowdown is the self-diagnosis loop
// end-to-end at package level: fast baseline samples, then slow recent
// ones with a correlated attribute — the diagnosis must measure the
// slowdown and rank a discriminating predicate over the attribute.
func TestSamplerDiagnosePlantedSlowdown(t *testing.T) {
	fc := &fakeCollect{latency: 0.01, slow: 0}
	s, err := New(Config{Collect: fc.sample, Window: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := s.SampleNow(); err != nil {
			t.Fatalf("baseline sample %d: %v", i, err)
		}
	}
	fc.latency, fc.slow = 0.2, 3 // the slowdown lands
	for i := 0; i < 3; i++ {
		if err := s.SampleNow(); err != nil {
			t.Fatalf("slow sample %d: %v", i, err)
		}
	}
	rep, err := s.Diagnose(context.Background(), 3)
	if err != nil {
		t.Fatalf("diagnose: %v", err)
	}
	if rep.Samples != 9 || len(rep.Baseline) != 6 || len(rep.Recent) != 3 {
		t.Fatalf("window split = %d/%d/%d, want 9/6/3",
			rep.Samples, len(rep.Baseline), len(rep.Recent))
	}
	res := rep.Result
	if res.PerfB <= res.PerfA {
		t.Errorf("PerfB = %g <= PerfA = %g, want recent slower", res.PerfB, res.PerfA)
	}
	if len(res.Explanations) == 0 {
		t.Fatal("no discriminating predicates found for a planted slowdown")
	}
	if got := res.Explanations[0].Pred.Attr; got != "slow_traces_delta" {
		t.Errorf("top predicate attr = %q, want slow_traces_delta (all: %v)",
			got, res.Explanations)
	}
}

// TestSamplerWindowSlide checks that the side store is rebuilt once the
// window fills and diagnosis keeps working over the retained slice.
func TestSamplerWindowSlide(t *testing.T) {
	fc := &fakeCollect{latency: 0.01}
	s, err := New(Config{Collect: fc.sample, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.SampleNow(); err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.Samples != 10 || st.Retained != 4 || st.Rebuilds == 0 {
		t.Errorf("stats = %+v, want 10 samples, 4 retained, rebuilds > 0", st)
	}
	rep, err := s.Diagnose(context.Background(), 0)
	if err != nil {
		t.Fatalf("diagnose after slide: %v", err)
	}
	if rep.Samples != 4 {
		t.Errorf("diagnose saw %d samples, want the retained 4", rep.Samples)
	}
}

// TestDiagnoseNeedsTwoSamples pins the sentinel error before the window
// has anything to split.
func TestDiagnoseNeedsTwoSamples(t *testing.T) {
	fc := &fakeCollect{latency: 0.01}
	s, err := New(Config{Collect: fc.sample})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Diagnose(context.Background(), 0); err == nil {
		t.Fatal("expected ErrNotEnoughSamples with 0 samples")
	}
	if err := s.SampleNow(); err != nil {
		t.Fatal(err)
	}
	_, err = s.Diagnose(context.Background(), 0)
	if err == nil {
		t.Fatal("expected ErrNotEnoughSamples with 1 sample")
	}
}

// TestSamplerStartStop exercises the background loop briefly.
func TestSamplerStartStop(t *testing.T) {
	fc := &fakeCollect{latency: 0.01}
	s, err := New(Config{Collect: fc.sample, Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	deadline := time.After(2 * time.Second)
	for s.Stats().Samples == 0 {
		select {
		case <-deadline:
			t.Fatal("background loop took no samples in 2s")
		case <-time.After(5 * time.Millisecond):
		}
	}
	s.Stop()
	after := s.Stats().Samples
	time.Sleep(10 * time.Millisecond)
	if got := s.Stats().Samples; got != after {
		t.Errorf("samples kept accruing after Stop: %d -> %d", after, got)
	}
	// Stop again is safe.
	s.Stop()
}
