// Package selfmon closes PerfTrack's dog-food loop: it periodically
// samples a process's own telemetry, serializes each sample as one PTdf
// execution into an in-memory side store, and runs the comparison-based
// diagnosis engine (internal/diagnose) over a rolling baseline-vs-recent
// window split — so ptserved can answer "why are recent requests
// slower?" with the same ranked discriminating predicates it offers for
// any parallel application (the §6 workflow turned on the tool itself).
//
// Each sample becomes an execution named <app>-sample-<seq> whose
// exec-scoped resource carries the sample's operational attributes
// (in-flight requests, goroutines, heap, shed/slow-trace deltas, ...) as
// resource attributes, and whose time-like metrics (interval latency
// means, in seconds) feed the diagnosis perf measure. The side store is
// rebuilt from the retained window when it outgrows it, so memory stays
// bounded no matter how long the process runs.
package selfmon

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"perftrack/internal/core"
	"perftrack/internal/datastore"
	"perftrack/internal/diagnose"
	"perftrack/internal/ptdf"
	"perftrack/internal/reldb"
)

// Metric is one measured value of a sample. Units containing "second"
// join the diagnosis perf measure (the engine's default time-like
// metric selection); anything else is ranked only as a bottleneck when
// named explicitly.
type Metric struct {
	Name  string
	Value float64
	Units string
}

// Sample is one snapshot of the monitored process. Attrs are ordered
// key/value pairs attached to the sample's exec-scoped resource;
// numeric strings join the diagnosis engine's threshold-predicate
// search space exactly like any planted PTdf attribute.
type Sample struct {
	Metrics []Metric
	Attrs   [][2]string
}

// Config parameterizes a Sampler.
type Config struct {
	// App names the PTdf application (and tool) the samples belong to.
	// Default "ptserved".
	App string
	// Host names the grid/machine resource. Default "localhost".
	Host string
	// Interval is the background sampling period. Default 15s.
	Interval time.Duration
	// Window bounds retained samples; older samples age out of the side
	// store. Default 64.
	Window int
	// Collect snapshots the process. Required.
	Collect func() Sample
	// OnError receives background sampling failures; nil drops them.
	OnError func(error)
}

// DocSpec names the PTdf document one sample serializes into.
type DocSpec struct {
	App     string
	Exec    string
	Host    string
	Comment string
}

// WriteDoc serializes one sample as a loadable PTdf document: the app,
// an execution, the host as a grid/machine resource, an exec-scoped
// sample resource carrying the attributes (when any), and one
// PerfResult per metric focused on the sample + machine context. The
// record order matches /v1/debug/selfptdf's original hand-rolled form,
// which is the Attrs-free special case of this function.
func WriteDoc(w io.Writer, spec DocSpec, s Sample) error {
	pw := ptdf.NewWriter(w)
	if spec.Comment != "" {
		pw.Comment(spec.Comment)
	}
	pw.Write(ptdf.ApplicationRec{Name: spec.App})
	pw.Write(ptdf.ResourceTypeRec{Type: "grid"})
	pw.Write(ptdf.ResourceTypeRec{Type: "grid/machine"})
	if len(s.Attrs) > 0 {
		pw.Write(ptdf.ResourceTypeRec{Type: "execution"})
	}
	pw.Write(ptdf.ExecutionRec{Name: spec.Exec, App: spec.App})
	machine := core.ResourceName("/" + spec.App + "/" + spec.Host)
	pw.Write(ptdf.ResourceRec{Name: core.ResourceName("/" + spec.App), Type: "grid"})
	pw.Write(ptdf.ResourceRec{Name: machine, Type: "grid/machine"})
	focus := []core.ResourceName{machine}
	if len(s.Attrs) > 0 {
		execRes := core.ResourceName("/" + spec.Exec)
		pw.Write(ptdf.ResourceRec{Name: execRes, Type: "execution", Exec: spec.Exec})
		for _, kv := range s.Attrs {
			pw.Write(ptdf.ResourceAttributeRec{
				Resource: execRes, Attr: kv[0], Value: kv[1], AttrType: "string",
			})
		}
		focus = []core.ResourceName{execRes, machine}
	}
	sets := []ptdf.ResourceSet{{Names: focus, Type: core.FocusPrimary}}
	for _, m := range s.Metrics {
		pw.Write(ptdf.PerfResultRec{
			Exec: spec.Exec, Sets: sets, Tool: spec.App,
			Metric: m.Name, Value: m.Value, Units: m.Units,
		})
	}
	return pw.Flush()
}

// sampleDoc retains one loaded sample so the side store can be rebuilt
// when the window slides.
type sampleDoc struct {
	exec string
	text []byte
}

// Sampler maintains the rolling sample window and its side store.
type Sampler struct {
	cfg Config

	mu    sync.Mutex
	store *datastore.Store
	docs  []sampleDoc // oldest first; the current store holds exactly these
	seq   int

	samples  uint64
	errors   uint64
	rebuilds uint64

	startOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// Stats is a snapshot of the sampler's lifetime counters.
type Stats struct {
	Samples  uint64
	Errors   uint64
	Rebuilds uint64
	Retained int
}

// New validates the config and opens the in-memory side store.
func New(cfg Config) (*Sampler, error) {
	if cfg.Collect == nil {
		return nil, fmt.Errorf("selfmon: Config.Collect is required")
	}
	if cfg.App == "" {
		cfg.App = "ptserved"
	}
	if cfg.Host == "" {
		cfg.Host = "localhost"
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 15 * time.Second
	}
	if cfg.Window <= 0 {
		cfg.Window = 64
	}
	store, err := datastore.Open(reldb.NewMem())
	if err != nil {
		return nil, fmt.Errorf("selfmon: side store: %w", err)
	}
	return &Sampler{
		cfg:   cfg,
		store: store,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}, nil
}

// SampleNow collects one sample and loads it into the side store,
// sliding the window if it is full.
func (s *Sampler) SampleNow() error {
	sample := s.cfg.Collect()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	exec := fmt.Sprintf("%s-sample-%06d", s.cfg.App, s.seq)
	var buf bytes.Buffer
	if err := WriteDoc(&buf, DocSpec{App: s.cfg.App, Exec: exec, Host: s.cfg.Host}, sample); err != nil {
		s.errors++
		return fmt.Errorf("selfmon: serialize sample: %w", err)
	}
	if _, err := s.store.LoadPTdf(bytes.NewReader(buf.Bytes())); err != nil {
		s.errors++
		return fmt.Errorf("selfmon: load sample: %w", err)
	}
	s.docs = append(s.docs, sampleDoc{exec: exec, text: buf.Bytes()})
	s.samples++
	if len(s.docs) > s.cfg.Window {
		if err := s.rebuildLocked(s.docs[len(s.docs)-s.cfg.Window:]); err != nil {
			s.errors++
			return err
		}
	}
	return nil
}

// rebuildLocked replaces the side store with a fresh one holding only
// the given window of retained docs. Readers holding the old store
// pointer keep a consistent (just stale) view.
func (s *Sampler) rebuildLocked(keep []sampleDoc) error {
	fresh, err := datastore.Open(reldb.NewMem())
	if err != nil {
		return fmt.Errorf("selfmon: rebuild side store: %w", err)
	}
	for _, d := range keep {
		if _, err := fresh.LoadPTdf(bytes.NewReader(d.text)); err != nil {
			return fmt.Errorf("selfmon: rebuild: reload %s: %w", d.exec, err)
		}
	}
	s.store = fresh
	s.docs = append([]sampleDoc(nil), keep...)
	s.rebuilds++
	return nil
}

// ErrNotEnoughSamples is returned by Diagnose before the sampler has a
// window worth splitting.
var ErrNotEnoughSamples = errors.New("selfmon: need at least 2 samples to diagnose")

// Report is one self-diagnosis: the window split plus the engine's
// result.
type Report struct {
	Samples  int
	Baseline []string
	Recent   []string
	Result   *diagnose.Result
}

// Diagnose splits the retained window into a baseline (older) and a
// recent slice — recentN samples, default max(1, retained/4) — and runs
// the diagnosis engine with the baseline as side A and the recent
// samples as side B, so a positive delta reads "recent is slower".
func (s *Sampler) Diagnose(ctx context.Context, recentN int) (*Report, error) {
	s.mu.Lock()
	store := s.store
	execs := make([]string, len(s.docs))
	for i, d := range s.docs {
		execs[i] = d.exec
	}
	s.mu.Unlock()

	if len(execs) < 2 {
		return nil, fmt.Errorf("%w, have %d", ErrNotEnoughSamples, len(execs))
	}
	if recentN <= 0 {
		recentN = max(1, len(execs)/4)
	}
	if recentN > len(execs)-1 {
		recentN = len(execs) - 1
	}
	baseline := execs[:len(execs)-recentN]
	recent := execs[len(execs)-recentN:]
	res, err := diagnose.Run(ctx, store, diagnose.Spec{
		ExecsA: baseline,
		ExecsB: recent,
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		Samples:  len(execs),
		Baseline: baseline,
		Recent:   recent,
		Result:   res,
	}, nil
}

// Start launches the background sampling loop. Safe to call once;
// subsequent calls are no-ops.
func (s *Sampler) Start() {
	s.startOnce.Do(func() {
		go func() {
			defer close(s.done)
			t := time.NewTicker(s.cfg.Interval)
			defer t.Stop()
			for {
				select {
				case <-s.stop:
					return
				case <-t.C:
					if err := s.SampleNow(); err != nil && s.cfg.OnError != nil {
						s.cfg.OnError(err)
					}
				}
			}
		}()
	})
}

// Stop halts the background loop and waits for it to exit. Safe to call
// whether or not Start ran.
func (s *Sampler) Stop() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	s.startOnce.Do(func() { close(s.done) }) // never started: unblock done
	<-s.done
}

// Stats snapshots the sampler's counters.
func (s *Sampler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Samples:  s.samples,
		Errors:   s.errors,
		Rebuilds: s.rebuilds,
		Retained: len(s.docs),
	}
}
