package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level is a log severity. Messages below the logger's level are
// dropped before any formatting happens.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the level's lowercase name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "level(" + strconv.Itoa(int(l)) + ")"
	}
}

// ParseLevel parses "debug", "info", "warn"/"warning", or "error".
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q", s)
}

// Logger writes structured key=value lines:
//
//	time=2026-08-05T12:00:00.000Z level=info msg="request done" route=/v1/query dur=1.2ms
//
// Keys and values come in pairs; a trailing odd argument is emitted
// under the key "!arg". A nil *Logger drops everything, so callers
// never need to guard log sites.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	level Level
}

// NewLogger returns a logger writing lines at or above level to w.
func NewLogger(w io.Writer, level Level) *Logger {
	return &Logger{w: w, level: level}
}

// Enabled reports whether level would be written.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= l.level
}

// Debug logs at debug level.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at info level.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at error level.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	var b strings.Builder
	b.Grow(96)
	b.WriteString("time=")
	b.WriteString(time.Now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" level=")
	b.WriteString(level.String())
	b.WriteString(" msg=")
	appendValue(&b, msg)
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		appendKey(&b, kv[i])
		b.WriteByte('=')
		appendValue(&b, kv[i+1])
	}
	if len(kv)%2 == 1 {
		b.WriteString(" !arg=")
		appendValue(&b, kv[len(kv)-1])
	}
	b.WriteByte('\n')
	l.mu.Lock()
	io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

func appendKey(b *strings.Builder, k any) {
	if s, ok := k.(string); ok {
		b.WriteString(s)
		return
	}
	fmt.Fprint(b, k)
}

// appendValue renders v, quoting strings that contain spaces, quotes,
// or '=' so the line stays machine-parsable.
func appendValue(b *strings.Builder, v any) {
	var s string
	switch t := v.(type) {
	case string:
		s = t
	case time.Duration:
		s = t.String()
	case error:
		s = t.Error()
	case fmt.Stringer:
		s = t.String()
	default:
		fmt.Fprint(b, v)
		return
	}
	if s == "" || strings.ContainsAny(s, " \"=\n\t") {
		b.WriteString(strconv.Quote(s))
		return
	}
	b.WriteString(s)
}
