// Package obs is the process-wide telemetry subsystem: a metrics
// registry (counters, gauges, fixed-bucket latency histograms) rendered
// in the Prometheus text exposition format, context-propagated span
// tracing recorded into bounded lock-free ring buffers with a slow-op
// log, and structured key=value leveled logging. Only the standard
// library is used.
//
// The three pieces compose but do not require each other: the server
// registers its request metrics and the datastore's counters in one
// Registry behind GET /metrics, threads a Trace through each request's
// context so datastore spans (batch commit, WAL flush, filter and
// materialize phases) land in the request's span tree, and logs through
// a Logger. A library caller that passes context.Background() pays only
// one context lookup per instrumented operation — no span is recorded
// and no allocation happens without a Trace in the context.
package obs
