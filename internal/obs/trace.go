package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// ctxSpanKey carries the current *Span through a context.
type ctxSpanKey struct{}

// Annotation is one key=value note attached to a span.
type Annotation struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanData is an immutable copy of one recorded span.
type SpanData struct {
	ID          int           `json:"id"`
	Parent      int           `json:"parent"` // -1 for the root
	Name        string        `json:"name"`
	Start       time.Time     `json:"start"`
	Duration    time.Duration `json:"duration"`
	Annotations []Annotation  `json:"annotations,omitempty"`
}

// TraceData is an immutable copy of a completed trace.
type TraceData struct {
	ID       string
	Name     string
	Start    time.Time
	Duration time.Duration
	Slow     bool
	Spans    []SpanData
}

// Trace is one request's span tree. Spans may start and end from
// multiple goroutines; the trace's mutex serializes mutation. A trace
// becomes visible in the tracer's rings only when its root span ends,
// so anything read back out of a ring is complete.
type Trace struct {
	tracer *Tracer
	id     string
	name   string
	start  time.Time

	mu       sync.Mutex
	spans    []*Span
	duration time.Duration
	slow     bool
	done     bool
}

// Span is a live handle to one operation inside a trace. The zero
// handle (a nil *Span) is valid: every method is a no-op, which is what
// instrumented code gets when no trace rides the context.
type Span struct {
	trace  *Trace
	idx    int // index in trace.spans; 0 is the root
	parent int // parent index, -1 for the root

	name        string
	start       time.Time
	duration    time.Duration
	annotations []Annotation
}

// Tracer owns the trace rings and the slow-op policy.
type Tracer struct {
	slowThreshold time.Duration
	onSlow        func(*Trace)
	recent        *Ring[Trace]
	slow          *Ring[Trace]

	started   atomic.Uint64
	completed atomic.Uint64
	slowCount atomic.Uint64
	spanCount atomic.Uint64
}

// NewTracer returns a tracer keeping the last capacity completed traces
// (and the last capacity slow ones, separately). A trace whose total
// duration reaches slowThreshold is marked slow and passed to onSlow,
// if set; slowThreshold <= 0 disables slow-op detection.
func NewTracer(capacity int, slowThreshold time.Duration, onSlow func(*Trace)) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{
		slowThreshold: slowThreshold,
		onSlow:        onSlow,
		recent:        NewRing[Trace](capacity),
		slow:          NewRing[Trace](capacity),
	}
}

// StartTrace begins a trace with the given request ID and root span
// name, returning a context that carries the root span. End the
// returned span to complete the trace and publish it to the rings.
func (t *Tracer) StartTrace(ctx context.Context, id, name string) (context.Context, *Span) {
	t.started.Add(1)
	t.spanCount.Add(1)
	tr := &Trace{tracer: t, id: id, name: name, start: time.Now()}
	root := &Span{trace: tr, idx: 0, parent: -1, name: name, start: tr.start}
	tr.spans = []*Span{root}
	return context.WithValue(ctx, ctxSpanKey{}, root), root
}

// StartSpan begins a child of the span carried by ctx, returning a
// context that carries the new span. When ctx carries no span — the
// caller was not invoked under a trace — it returns ctx unchanged and a
// nil handle, at the cost of a single context lookup.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(ctxSpanKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	tr := parent.trace
	s := &Span{trace: tr, parent: parent.idx, name: name, start: time.Now()}
	tr.mu.Lock()
	s.idx = len(tr.spans)
	tr.spans = append(tr.spans, s)
	tr.mu.Unlock()
	tr.tracer.spanCount.Add(1)
	return context.WithValue(ctx, ctxSpanKey{}, s), s
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxSpanKey{}).(*Span)
	return s
}

// Annotate attaches a key=value note to the span. No-op on a nil span.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	s.annotations = append(s.annotations, Annotation{Key: key, Value: value})
	s.trace.mu.Unlock()
}

// End finishes the span. Ending the root span completes the trace:
// its duration is fixed, slow-op policy runs, and the trace is
// published to the tracer's rings. No-op on a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	tr := s.trace
	tr.mu.Lock()
	s.duration = d
	if s.idx != 0 || tr.done {
		tr.mu.Unlock()
		return
	}
	tr.done = true
	tr.duration = d
	slow := tr.tracer.slowThreshold > 0 && d >= tr.tracer.slowThreshold
	tr.slow = slow
	tr.mu.Unlock()

	tc := tr.tracer
	tc.completed.Add(1)
	tc.recent.Put(tr)
	if slow {
		tc.slowCount.Add(1)
		tc.slow.Put(tr)
		if tc.onSlow != nil {
			tc.onSlow(tr)
		}
	}
}

// ID returns the trace's request ID.
func (t *Trace) ID() string { return t.id }

// Name returns the root span's name (the route).
func (t *Trace) Name() string { return t.name }

// Data returns an immutable deep copy of the trace.
func (t *Trace) Data() TraceData {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := TraceData{
		ID:       t.id,
		Name:     t.name,
		Start:    t.start,
		Duration: t.duration,
		Slow:     t.slow,
		Spans:    make([]SpanData, len(t.spans)),
	}
	for i, s := range t.spans {
		d.Spans[i] = SpanData{
			ID:          s.idx,
			Parent:      s.parent,
			Name:        s.name,
			Start:       s.start,
			Duration:    s.duration,
			Annotations: append([]Annotation(nil), s.annotations...),
		}
	}
	return d
}

// Recent returns up to max completed traces, newest first.
func (t *Tracer) Recent(max int) []TraceData {
	return snapshotData(t.recent, max)
}

// Slow returns up to max slow traces, newest first.
func (t *Tracer) Slow(max int) []TraceData {
	return snapshotData(t.slow, max)
}

// Find returns the most recent completed trace with the given request
// ID, searching the recent ring and then the slow ring (a slow trace
// can outlive its slot in the recent ring).
func (t *Tracer) Find(id string) (TraceData, bool) {
	for _, ring := range []*Ring[Trace]{t.recent, t.slow} {
		for _, tr := range ring.Snapshot(0) {
			if tr.id == id {
				return tr.Data(), true
			}
		}
	}
	return TraceData{}, false
}

// Stats reports lifetime tracer counters.
func (t *Tracer) Stats() (started, completed, slow, spans uint64) {
	return t.started.Load(), t.completed.Load(), t.slowCount.Load(), t.spanCount.Load()
}

func snapshotData(r *Ring[Trace], max int) []TraceData {
	traces := r.Snapshot(max)
	out := make([]TraceData, len(traces))
	for i, tr := range traces {
		out[i] = tr.Data()
	}
	return out
}
