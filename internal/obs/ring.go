package obs

import "sync/atomic"

// Ring is a bounded lock-free ring buffer with overwrite semantics:
// writers never block and never fail; once full, each Put evicts the
// oldest element. Snapshot returns newest-first. A slot being written
// concurrently with a Snapshot is either seen with its previous value
// or its new one — never torn — because slots hold atomic pointers.
type Ring[T any] struct {
	slots []atomic.Pointer[T]
	next  atomic.Uint64 // total Puts; next slot is next % len(slots)
}

// NewRing returns a ring holding up to n elements (n < 1 is treated
// as 1).
func NewRing[T any](n int) *Ring[T] {
	if n < 1 {
		n = 1
	}
	return &Ring[T]{slots: make([]atomic.Pointer[T], n)}
}

// Put appends v, evicting the oldest element when full.
func (r *Ring[T]) Put(v *T) {
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(v)
}

// Len returns the number of elements currently held.
func (r *Ring[T]) Len() int {
	n := r.next.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Cap returns the ring's capacity.
func (r *Ring[T]) Cap() int { return len(r.slots) }

// Snapshot returns up to max elements, newest first (max <= 0 means
// all). Under concurrent Puts the result is a best-effort view: each
// returned element was in the ring at some point during the call.
func (r *Ring[T]) Snapshot(max int) []*T {
	n := int(r.next.Load())
	if n > len(r.slots) {
		n = len(r.slots)
	}
	if max > 0 && n > max {
		n = max
	}
	out := make([]*T, 0, n)
	head := r.next.Load()
	for i := 0; i < n; i++ {
		// head-1 is the newest slot, walk backwards.
		idx := (head - 1 - uint64(i)) % uint64(len(r.slots))
		if v := r.slots[idx].Load(); v != nil {
			out = append(out, v)
		}
	}
	return out
}
