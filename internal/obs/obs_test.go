package obs

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{0.1, 0.5, 1})
	for _, v := range []float64{0.05, 0.1, 0.3, 0.7, 2, 5} {
		h.Observe(v)
	}
	bounds, cum, total := h.Buckets()
	if len(bounds) != 3 {
		t.Fatalf("bounds = %v", bounds)
	}
	// Cumulative: <=0.1 holds 0.05 and 0.1; <=0.5 adds 0.3; <=1 adds 0.7;
	// +Inf adds 2 and 5.
	want := []uint64{2, 3, 4}
	for i := range want {
		if cum[i] != want[i] {
			t.Errorf("cum[%d] = %d, want %d", i, cum[i], want[i])
		}
	}
	if total != 6 {
		t.Errorf("total = %d, want 6", total)
	}
	if h.Count() != 6 {
		t.Errorf("Count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.1+0.3+0.7+2+5; math.Abs(got-want) > 1e-9 {
		t.Errorf("Sum = %g, want %g", got, want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
	// 10 observations uniformly in (0,1]: median interpolates inside the
	// first bucket.
	for i := 1; i <= 10; i++ {
		h.Observe(float64(i) / 10)
	}
	if q := h.Quantile(0.5); math.Abs(q-0.5) > 1e-9 {
		t.Errorf("p50 = %g, want 0.5", q)
	}
	if q := h.Quantile(1); math.Abs(q-1) > 1e-9 {
		t.Errorf("p100 = %g, want 1", q)
	}
	// An observation beyond the last bound clamps to it.
	h.Observe(100)
	if q := h.Quantile(1); q != 4 {
		t.Errorf("p100 with +Inf sample = %g, want 4 (clamped)", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(DefBuckets)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("Count = %d, want 8000", h.Count())
	}
	if math.Abs(h.Sum()-80) > 1e-6 {
		t.Errorf("Sum = %g, want 80", h.Sum())
	}
}

func TestRingOverwrite(t *testing.T) {
	r := NewRing[int](3)
	if r.Len() != 0 || r.Cap() != 3 {
		t.Fatalf("fresh ring Len=%d Cap=%d", r.Len(), r.Cap())
	}
	for i := 1; i <= 5; i++ {
		v := i
		r.Put(&v)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	got := r.Snapshot(0)
	if len(got) != 3 || *got[0] != 5 || *got[1] != 4 || *got[2] != 3 {
		vals := make([]int, len(got))
		for i, p := range got {
			vals[i] = *p
		}
		t.Fatalf("Snapshot = %v, want [5 4 3] (newest first, oldest overwritten)", vals)
	}
	if got := r.Snapshot(2); len(got) != 2 || *got[0] != 5 {
		t.Fatalf("Snapshot(2) wrong: len=%d", len(got))
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing[int](16)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				v := g*1000 + i
				r.Put(&v)
				if i%100 == 0 {
					r.Snapshot(0)
				}
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 16 {
		t.Errorf("Len = %d, want 16", r.Len())
	}
}

func TestTraceSpans(t *testing.T) {
	tr := NewTracer(8, 0, nil)
	ctx, root := tr.StartTrace(context.Background(), "req-1", "/v1/query")
	ctx2, s1 := StartSpan(ctx, "datastore.filter")
	s1.Annotate("cache", "miss")
	_, s2 := StartSpan(ctx2, "materialize.fetch")
	s2.End()
	s1.End()
	root.End()

	data, ok := tr.Find("req-1")
	if !ok {
		t.Fatal("trace not found after root End")
	}
	if data.Name != "/v1/query" || len(data.Spans) != 3 {
		t.Fatalf("trace = %+v", data)
	}
	if data.Spans[0].Parent != -1 || data.Spans[1].Parent != 0 || data.Spans[2].Parent != 1 {
		t.Errorf("parent chain wrong: %+v", data.Spans)
	}
	if data.Spans[1].Name != "datastore.filter" {
		t.Errorf("span name = %q", data.Spans[1].Name)
	}
	if len(data.Spans[1].Annotations) != 1 || data.Spans[1].Annotations[0].Value != "miss" {
		t.Errorf("annotations = %+v", data.Spans[1].Annotations)
	}
	recent := tr.Recent(0)
	if len(recent) != 1 {
		t.Errorf("Recent = %d traces, want 1", len(recent))
	}
}

func TestStartSpanWithoutTrace(t *testing.T) {
	ctx := context.Background()
	ctx2, s := StartSpan(ctx, "anything")
	if s != nil {
		t.Fatal("expected nil span without a trace in context")
	}
	if ctx2 != ctx {
		t.Fatal("context should be unchanged without a trace")
	}
	// The nil handle must absorb every call.
	s.Annotate("k", "v")
	s.End()
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTracer(4, 0, nil)
	ctx, root := tr.StartTrace(context.Background(), "req-c", "/v1/load")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, s := StartSpan(ctx, fmt.Sprintf("worker-%d", g))
				s.Annotate("i", fmt.Sprint(i))
				s.End()
			}
		}(g)
	}
	wg.Wait()
	root.End()
	data, ok := tr.Find("req-c")
	if !ok {
		t.Fatal("trace not found")
	}
	if len(data.Spans) != 1+8*50 {
		t.Fatalf("spans = %d, want %d", len(data.Spans), 1+8*50)
	}
	_, completed, _, spans := tr.Stats()
	if completed != 1 || spans != 1+8*50 {
		t.Errorf("Stats completed=%d spans=%d", completed, spans)
	}
}

func TestTracerSlow(t *testing.T) {
	var gotSlow *Trace
	tr := NewTracer(4, time.Nanosecond, func(t *Trace) { gotSlow = t })
	ctx, root := tr.StartTrace(context.Background(), "slow-1", "/v1/results")
	_, s := StartSpan(ctx, "sleepy")
	time.Sleep(time.Millisecond)
	s.End()
	root.End()
	if gotSlow == nil || gotSlow.ID() != "slow-1" {
		t.Fatal("onSlow callback not fired")
	}
	slow := tr.Slow(0)
	if len(slow) != 1 || !slow[0].Slow {
		t.Fatalf("Slow ring = %+v", slow)
	}
}

func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("app_ops_total", "Total operations.")
	c.Add(7)
	g := r.Gauge("app_temperature", "Current temperature.")
	g.Set(2.5)
	r.CounterFunc("app_func_total", "From a callback.", func() uint64 { return 3 })
	v := r.CounterVec("app_requests_total", "Requests by route and code.", "route", "code")
	v.With("/v1/load", "200").Add(2)
	v.With("/v1/load", "400").Inc()
	hv := r.HistogramVec("app_latency_seconds", "Latency.", []float64{0.1, 1}, "route")
	h := hv.With("/v1/load")
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_func_total From a callback.
# TYPE app_func_total counter
app_func_total 3
# HELP app_latency_seconds Latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{route="/v1/load",le="0.1"} 1
app_latency_seconds_bucket{route="/v1/load",le="1"} 2
app_latency_seconds_bucket{route="/v1/load",le="+Inf"} 3
app_latency_seconds_sum{route="/v1/load"} 3.55
app_latency_seconds_count{route="/v1/load"} 3
# HELP app_ops_total Total operations.
# TYPE app_ops_total counter
app_ops_total 7
# HELP app_requests_total Requests by route and code.
# TYPE app_requests_total counter
app_requests_total{route="/v1/load",code="200"} 2
app_requests_total{route="/v1/load",code="400"} 1
# HELP app_temperature Current temperature.
# TYPE app_temperature gauge
app_temperature 2.5
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestRegistryIdempotentAndConflict(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "")
	b := r.Counter("x_total", "")
	if a != b {
		t.Error("re-registering a counter should return the same instance")
	}
	defer func() {
		if recover() == nil {
			t.Error("conflicting re-registration should panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestLoggerLevelsAndFormat(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelInfo)
	l.Debug("hidden", "k", "v")
	l.Info("request done", "route", "/v1/query", "dur", 1500*time.Microsecond, "code", 200, "msgy", "two words")
	out := b.String()
	if strings.Contains(out, "hidden") {
		t.Error("debug line leaked through info level")
	}
	for _, want := range []string{
		"level=info", `msg="request done"`, "route=/v1/query",
		"dur=1.5ms", "code=200", `msgy="two words"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("log line missing %q: %s", want, out)
		}
	}
	if !strings.HasPrefix(out, "time=") {
		t.Errorf("log line should start with time=: %s", out)
	}

	var nilLogger *Logger
	nilLogger.Info("must not panic")
	if nilLogger.Enabled(LevelError) {
		t.Error("nil logger should report not enabled")
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "": LevelInfo,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel should reject unknown levels")
	}
}

func TestRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"go_goroutines", "go_heap_alloc_bytes", "go_gc_pause_seconds_total"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("runtime metrics missing %s", want)
		}
	}
}
