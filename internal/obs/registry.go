package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Registration is idempotent: asking for an existing
// name with the same shape returns the existing metric; a conflicting
// re-registration panics (it is a programming error, not runtime input).
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// metric is one registered family: it renders its complete exposition
// block (HELP, TYPE, series) given its name. exemplars is true only for
// the OpenMetrics format; the plain 0.0.4 format must not carry them.
type metric interface {
	metricType() string
	helpText() string
	write(w *bufio.Writer, name string, exemplars bool)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

// register installs m under name, or returns the existing metric when it
// has the same concrete shape.
func (r *Registry) register(name string, m metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.metrics[name]; ok {
		if fmt.Sprintf("%T", old) != fmt.Sprintf("%T", m) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %T (was %T)", name, m, old))
		}
		return old
	}
	r.metrics[name] = m
	return m
}

// WritePrometheus renders every registered metric, sorted by name, in
// the plain text exposition format (version 0.0.4). Exemplars are
// omitted: the 0.0.4 parser rejects trailing content after a sample
// value, so they are only legal on OpenMetrics output.
func (r *Registry) WritePrometheus(w io.Writer) error { return r.write(w, false) }

// WriteOpenMetrics renders every registered metric in the OpenMetrics
// text format: the same families and samples as WritePrometheus, plus
// per-bucket histogram exemplars and the terminating "# EOF" marker.
func (r *Registry) WriteOpenMetrics(w io.Writer) error { return r.write(w, true) }

func (r *Registry) write(w io.Writer, openMetrics bool) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	ms := make([]metric, len(names))
	for i, n := range names {
		ms[i] = r.metrics[n]
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for i, m := range ms {
		if h := m.helpText(); h != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", names[i], h)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", names[i], m.metricType())
		m.write(bw, names[i], openMetrics)
	}
	if openMetrics {
		fmt.Fprintln(bw, "# EOF")
	}
	return bw.Flush()
}

// formatValue renders a sample value: integers without an exponent,
// floats in shortest form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// labelString renders {k="v",...} for parallel name/value slices.
func labelString(names, values []string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// --- counter ---

// Counter is a monotonically increasing uint64.
type Counter struct {
	help string
	v    atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) metricType() string { return "counter" }
func (c *Counter) helpText() string   { return c.help }
func (c *Counter) write(w *bufio.Writer, name string, _ bool) {
	fmt.Fprintf(w, "%s %d\n", name, c.v.Load())
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, &Counter{help: help}).(*Counter)
}

// counterFunc reports a counter read from a callback at scrape time —
// the bridge for counters owned by another subsystem (the datastore's
// commit and cache counters).
type counterFunc struct {
	help string
	fn   func() uint64
}

func (c *counterFunc) metricType() string { return "counter" }
func (c *counterFunc) helpText() string   { return c.help }
func (c *counterFunc) write(w *bufio.Writer, name string, _ bool) {
	fmt.Fprintf(w, "%s %d\n", name, c.fn())
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(name, &counterFunc{help: help, fn: fn})
}

// --- gauge ---

// Gauge is a settable float64.
type Gauge struct {
	help string
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (possibly negative).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) metricType() string { return "gauge" }
func (g *Gauge) helpText() string   { return g.help }
func (g *Gauge) write(w *bufio.Writer, name string, _ bool) {
	fmt.Fprintf(w, "%s %s\n", name, formatValue(g.Value()))
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, &Gauge{help: help}).(*Gauge)
}

// gaugeFunc reads its value from a callback at scrape time.
type gaugeFunc struct {
	help string
	fn   func() float64
}

func (g *gaugeFunc) metricType() string { return "gauge" }
func (g *gaugeFunc) helpText() string   { return g.help }
func (g *gaugeFunc) write(w *bufio.Writer, name string, _ bool) {
	fmt.Fprintf(w, "%s %s\n", name, formatValue(g.fn()))
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, &gaugeFunc{help: help, fn: fn})
}

// --- labeled families ---

// labelKey joins label values into one map key. \x1f cannot appear in
// practical label values, so the join is unambiguous.
func labelKey(values []string) string { return strings.Join(values, "\x1f") }

// CounterVec is a family of counters sharing a name, keyed by label
// values (e.g. route and status code).
type CounterVec struct {
	help   string
	labels []string

	mu       sync.RWMutex
	children map[string]*Counter
	keys     map[string][]string // label key -> values, for rendering
}

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return r.register(name, &CounterVec{
		help: help, labels: labels,
		children: make(map[string]*Counter),
		keys:     make(map[string][]string),
	}).(*CounterVec)
}

// With returns the counter for the given label values, creating it on
// first use. len(values) must equal the family's label count.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: counter wants %d labels, got %d", len(v.labels), len(values)))
	}
	key := labelKey(values)
	v.mu.RLock()
	c, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[key]; ok {
		return c
	}
	c = &Counter{}
	v.children[key] = c
	v.keys[key] = append([]string(nil), values...)
	return c
}

// Each visits every child with its label values, sorted by label key.
func (v *CounterVec) Each(fn func(values []string, c *Counter)) {
	v.mu.RLock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	vals := make([][]string, len(keys))
	cs := make([]*Counter, len(keys))
	for i, k := range keys {
		vals[i], cs[i] = v.keys[k], v.children[k]
	}
	v.mu.RUnlock()
	for i := range keys {
		fn(vals[i], cs[i])
	}
}

func (v *CounterVec) metricType() string { return "counter" }
func (v *CounterVec) helpText() string   { return v.help }
func (v *CounterVec) write(w *bufio.Writer, name string, _ bool) {
	v.Each(func(values []string, c *Counter) {
		fmt.Fprintf(w, "%s%s %d\n", name, labelString(v.labels, values), c.Value())
	})
}

// HistogramVec is a family of histograms sharing a name and bucket
// layout, keyed by label values (e.g. route).
type HistogramVec struct {
	help    string
	labels  []string
	buckets []float64

	mu       sync.RWMutex
	children map[string]*Histogram
	keys     map[string][]string
}

// HistogramVec registers (or returns) a labeled histogram family with
// the given upper bounds (ascending; +Inf is implicit).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return r.register(name, &HistogramVec{
		help: help, labels: labels, buckets: buckets,
		children: make(map[string]*Histogram),
		keys:     make(map[string][]string),
	}).(*HistogramVec)
}

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: histogram wants %d labels, got %d", len(v.labels), len(values)))
	}
	key := labelKey(values)
	v.mu.RLock()
	h, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.children[key]; ok {
		return h
	}
	h = NewHistogram(v.buckets)
	v.children[key] = h
	v.keys[key] = append([]string(nil), values...)
	return h
}

// Each visits every child with its label values, sorted by label key.
func (v *HistogramVec) Each(fn func(values []string, h *Histogram)) {
	v.mu.RLock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	vals := make([][]string, len(keys))
	hs := make([]*Histogram, len(keys))
	for i, k := range keys {
		vals[i], hs[i] = v.keys[k], v.children[k]
	}
	v.mu.RUnlock()
	for i := range keys {
		fn(vals[i], hs[i])
	}
}

func (v *HistogramVec) metricType() string { return "histogram" }
func (v *HistogramVec) helpText() string   { return v.help }
func (v *HistogramVec) write(w *bufio.Writer, name string, exemplars bool) {
	v.Each(func(values []string, h *Histogram) {
		h.writeSeries(w, name, v.labels, values, exemplars)
	})
}

// Histogram registers (or returns) an unlabeled histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, &histogramMetric{help: help, h: NewHistogram(buckets)}).(*histogramMetric).h
}

// RegisterHistogram installs an externally owned histogram under name —
// the bridge for histograms maintained by another subsystem (the
// datastore's segment scan-bytes histogram).
func (r *Registry) RegisterHistogram(name, help string, h *Histogram) {
	r.register(name, &histogramMetric{help: help, h: h})
}

// histogramMetric adapts a bare Histogram to the registry.
type histogramMetric struct {
	help string
	h    *Histogram
}

func (m *histogramMetric) metricType() string { return "histogram" }
func (m *histogramMetric) helpText() string   { return m.help }
func (m *histogramMetric) write(w *bufio.Writer, name string, exemplars bool) {
	m.h.writeSeries(w, name, nil, nil, exemplars)
}
