// Package ptdf implements the PerfTrack data format (PTdf) from Figure 6
// of the paper: the line-oriented interchange format used to define
// resource types, resources, attributes, constraints, executions, and
// performance results, and to load them into a PerfTrack data store.
//
// Record forms:
//
//	Application appName
//	ResourceType resourceTypeName
//	Execution execName appName
//	Resource resourceName resourceTypeName [execName]
//	ResourceAttribute resourceName attributeName attributeValue attributeType
//	ResourceConstraint resourceName1 resourceName2
//	PerfResult execName resourceSet perfToolName metricName value units
//
// Fields are whitespace-separated; a field containing whitespace is
// double-quoted with backslash escapes. attributeType is "string" or
// "resource" (the latter is equivalent to a ResourceConstraint). A
// resourceSet is one or more lists of resource names separated by ':';
// each list is a comma-separated run of resource names followed by a
// resource-set (focus) type name in parentheses, e.g.
//
//	/irs,/MCR/batch(primary):/e1/p0(sender):/e1/p1(receiver)
//
// Lines beginning with '#' are comments.
package ptdf

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"perftrack/internal/core"
)

// Record is one PTdf line.
type Record interface{ record() }

// ApplicationRec declares an application.
type ApplicationRec struct {
	Name string
}

// ResourceTypeRec declares (extends) a resource type.
type ResourceTypeRec struct {
	Type core.TypePath
}

// ExecutionRec declares an execution (one run) of an application.
type ExecutionRec struct {
	Name string
	App  string
}

// ResourceRec declares a resource, optionally scoped to an execution.
type ResourceRec struct {
	Name core.ResourceName
	Type core.TypePath
	Exec string // optional
}

// ResourceAttributeRec attaches an attribute to a resource. AttrType is
// "string" or "resource"; the latter makes Value a resource name and is
// equivalent to a ResourceConstraintRec.
type ResourceAttributeRec struct {
	Resource core.ResourceName
	Attr     string
	Value    string
	AttrType string
}

// ResourceConstraintRec records a resource-valued attribute linking two
// resources.
type ResourceConstraintRec struct {
	R1, R2 core.ResourceName
}

// ResourceSet is one focus-typed list of resources within a PerfResult.
type ResourceSet struct {
	Names []core.ResourceName
	Type  core.FocusType
}

// PerfResultRec records one scalar performance result.
type PerfResultRec struct {
	Exec   string
	Sets   []ResourceSet
	Tool   string
	Metric string
	Value  float64
	Units  string
}

// PerfHistogramRec records one histogram-valued (complex) performance
// result: a whole time-series of bins in a single record. This is the
// format extension for the paper's future-work item on complex
// performance results, which avoids creating a new performance result for
// each bin of a Paradyn histogram file. Bins with no data are NaN.
//
//	PerfHistogram execName resourceSet perfToolName metricName binWidth units values
//
// where values is a comma-separated list of numbers with "nan" allowed.
type PerfHistogramRec struct {
	Exec     string
	Sets     []ResourceSet
	Tool     string
	Metric   string
	BinWidth float64
	Units    string
	Values   []float64
}

func (ApplicationRec) record()        {}
func (ResourceTypeRec) record()       {}
func (ExecutionRec) record()          {}
func (ResourceRec) record()           {}
func (ResourceAttributeRec) record()  {}
func (ResourceConstraintRec) record() {}
func (PerfResultRec) record()         {}
func (PerfHistogramRec) record()      {}

// Contexts converts the record's resource sets to model contexts.
func (r PerfResultRec) Contexts() []core.Context {
	return setsToContexts(r.Sets)
}

// Contexts converts the record's resource sets to model contexts.
func (r PerfHistogramRec) Contexts() []core.Context {
	return setsToContexts(r.Sets)
}

func setsToContexts(sets []ResourceSet) []core.Context {
	out := make([]core.Context, 0, len(sets))
	for _, s := range sets {
		out = append(out, core.Context{Type: s.Type, Resources: append([]core.ResourceName(nil), s.Names...)})
	}
	return out
}

// FormatHistogramValues renders histogram bins as a comma-separated list
// with "nan" for missing bins.
func FormatHistogramValues(values []float64) string {
	var b strings.Builder
	for i, v := range values {
		if i > 0 {
			b.WriteByte(',')
		}
		if math.IsNaN(v) {
			b.WriteString("nan")
		} else {
			b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	return b.String()
}

// ParseHistogramValues parses the comma-separated bin list.
func ParseHistogramValues(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("ptdf: empty histogram values")
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "nan" {
			out = append(out, math.NaN())
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("ptdf: bad histogram value %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// FormatResourceSet renders resource sets in PTdf syntax.
func FormatResourceSet(sets []ResourceSet) string {
	var b strings.Builder
	for i, s := range sets {
		if i > 0 {
			b.WriteByte(':')
		}
		for j, n := range s.Names {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(string(n))
		}
		fmt.Fprintf(&b, "(%s)", s.Type)
	}
	return b.String()
}

// ParseResourceSet parses PTdf resource-set syntax. Spaces around
// delimiters are tolerated.
func ParseResourceSet(s string) ([]ResourceSet, error) {
	var sets []ResourceSet
	for _, part := range splitTopLevel(s, ':') {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("ptdf: empty resource set in %q", s)
		}
		open := strings.LastIndexByte(part, '(')
		if open < 0 || !strings.HasSuffix(part, ")") {
			return nil, fmt.Errorf("ptdf: resource set %q missing (type)", part)
		}
		typeName := strings.TrimSpace(part[open+1 : len(part)-1])
		ft, err := core.ParseFocusType(typeName)
		if err != nil {
			return nil, fmt.Errorf("ptdf: resource set %q: %w", part, err)
		}
		var names []core.ResourceName
		for _, n := range strings.Split(part[:open], ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				return nil, fmt.Errorf("ptdf: resource set %q has an empty name", part)
			}
			name := core.ResourceName(n)
			if err := name.Validate(); err != nil {
				return nil, fmt.Errorf("ptdf: %w", err)
			}
			names = append(names, name)
		}
		if len(names) == 0 {
			return nil, fmt.Errorf("ptdf: resource set %q has no names", part)
		}
		sets = append(sets, ResourceSet{Names: names, Type: ft})
	}
	if len(sets) == 0 {
		return nil, fmt.Errorf("ptdf: empty resource set %q", s)
	}
	return sets, nil
}

// splitTopLevel splits on sep outside parentheses.
func splitTopLevel(s string, sep byte) []string {
	var parts []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			if depth > 0 {
				depth--
			}
		case sep:
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}
