package ptdf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"perftrack/internal/core"
)

// splitFields tokenizes a PTdf line: whitespace-separated fields, with
// double-quoted fields allowing embedded whitespace and backslash escapes
// for '"' and '\'.
func splitFields(line string) ([]string, error) {
	var fields []string
	i := 0
	for i < len(line) {
		c := line[i]
		if c == ' ' || c == '\t' {
			i++
			continue
		}
		if c == '"' {
			i++
			var sb strings.Builder
			closed := false
			for i < len(line) {
				switch line[i] {
				case '\\':
					if i+1 >= len(line) {
						return nil, fmt.Errorf("ptdf: trailing backslash")
					}
					sb.WriteByte(line[i+1])
					i += 2
				case '"':
					closed = true
					i++
				default:
					sb.WriteByte(line[i])
					i++
				}
				if closed {
					break
				}
			}
			if !closed {
				return nil, fmt.Errorf("ptdf: unterminated quoted field")
			}
			fields = append(fields, sb.String())
			continue
		}
		start := i
		for i < len(line) && line[i] != ' ' && line[i] != '\t' {
			i++
		}
		fields = append(fields, line[start:i])
	}
	return fields, nil
}

// quoteField renders a field, quoting when it contains whitespace, quotes,
// or is empty.
func quoteField(s string) string {
	if s != "" && !strings.ContainsAny(s, " \t\"\\") {
		return s
	}
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' || s[i] == '\\' {
			sb.WriteByte('\\')
		}
		sb.WriteByte(s[i])
	}
	sb.WriteByte('"')
	return sb.String()
}

// FormatRecord renders one record as a PTdf line (without newline).
func FormatRecord(rec Record) string {
	switch r := rec.(type) {
	case ApplicationRec:
		return "Application " + quoteField(r.Name)
	case ResourceTypeRec:
		return "ResourceType " + quoteField(string(r.Type))
	case ExecutionRec:
		return "Execution " + quoteField(r.Name) + " " + quoteField(r.App)
	case ResourceRec:
		s := "Resource " + quoteField(string(r.Name)) + " " + quoteField(string(r.Type))
		if r.Exec != "" {
			s += " " + quoteField(r.Exec)
		}
		return s
	case ResourceAttributeRec:
		return "ResourceAttribute " + quoteField(string(r.Resource)) + " " +
			quoteField(r.Attr) + " " + quoteField(r.Value) + " " + quoteField(r.AttrType)
	case ResourceConstraintRec:
		return "ResourceConstraint " + quoteField(string(r.R1)) + " " + quoteField(string(r.R2))
	case PerfResultRec:
		return "PerfResult " + quoteField(r.Exec) + " " +
			quoteField(FormatResourceSet(r.Sets)) + " " +
			quoteField(r.Tool) + " " + quoteField(r.Metric) + " " +
			strconv.FormatFloat(r.Value, 'g', -1, 64) + " " + quoteField(r.Units)
	case PerfHistogramRec:
		return "PerfHistogram " + quoteField(r.Exec) + " " +
			quoteField(FormatResourceSet(r.Sets)) + " " +
			quoteField(r.Tool) + " " + quoteField(r.Metric) + " " +
			strconv.FormatFloat(r.BinWidth, 'g', -1, 64) + " " +
			quoteField(r.Units) + " " + quoteField(FormatHistogramValues(r.Values))
	default:
		return fmt.Sprintf("# unknown record %T", rec)
	}
}

// ParseLine parses one PTdf line. It returns (nil, nil) for blank lines
// and comments.
func ParseLine(line string) (Record, error) {
	trimmed := strings.TrimSpace(line)
	if trimmed == "" || strings.HasPrefix(trimmed, "#") {
		return nil, nil
	}
	fields, err := splitFields(trimmed)
	if err != nil {
		return nil, err
	}
	kind := fields[0]
	args := fields[1:]
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("ptdf: %s record needs %d fields, got %d", kind, n, len(args))
		}
		return nil
	}
	switch kind {
	case "Application":
		if err := need(1); err != nil {
			return nil, err
		}
		return ApplicationRec{Name: args[0]}, nil
	case "ResourceType":
		if err := need(1); err != nil {
			return nil, err
		}
		tp := core.TypePath(args[0])
		if err := tp.Validate(); err != nil {
			return nil, err
		}
		return ResourceTypeRec{Type: tp}, nil
	case "Execution":
		if err := need(2); err != nil {
			return nil, err
		}
		return ExecutionRec{Name: args[0], App: args[1]}, nil
	case "Resource":
		if len(args) != 2 && len(args) != 3 {
			return nil, fmt.Errorf("ptdf: Resource record needs 2 or 3 fields, got %d", len(args))
		}
		name := core.ResourceName(args[0])
		if err := name.Validate(); err != nil {
			return nil, err
		}
		tp := core.TypePath(args[1])
		if err := tp.Validate(); err != nil {
			return nil, err
		}
		rec := ResourceRec{Name: name, Type: tp}
		if len(args) == 3 {
			rec.Exec = args[2]
		}
		return rec, nil
	case "ResourceAttribute":
		if err := need(4); err != nil {
			return nil, err
		}
		name := core.ResourceName(args[0])
		if err := name.Validate(); err != nil {
			return nil, err
		}
		if args[3] != "string" && args[3] != "resource" {
			return nil, fmt.Errorf("ptdf: attribute type must be string or resource, got %q", args[3])
		}
		if args[3] == "resource" {
			if err := core.ResourceName(args[2]).Validate(); err != nil {
				return nil, fmt.Errorf("ptdf: resource-typed attribute value: %w", err)
			}
		}
		return ResourceAttributeRec{Resource: name, Attr: args[1], Value: args[2], AttrType: args[3]}, nil
	case "ResourceConstraint":
		if err := need(2); err != nil {
			return nil, err
		}
		r1 := core.ResourceName(args[0])
		r2 := core.ResourceName(args[1])
		if err := r1.Validate(); err != nil {
			return nil, err
		}
		if err := r2.Validate(); err != nil {
			return nil, err
		}
		return ResourceConstraintRec{R1: r1, R2: r2}, nil
	case "PerfResult":
		if err := need(6); err != nil {
			return nil, err
		}
		sets, err := ParseResourceSet(args[1])
		if err != nil {
			return nil, err
		}
		v, err := strconv.ParseFloat(args[4], 64)
		if err != nil {
			return nil, fmt.Errorf("ptdf: bad value %q: %w", args[4], err)
		}
		return PerfResultRec{
			Exec: args[0], Sets: sets, Tool: args[2], Metric: args[3],
			Value: v, Units: args[5],
		}, nil
	case "PerfHistogram":
		if err := need(7); err != nil {
			return nil, err
		}
		sets, err := ParseResourceSet(args[1])
		if err != nil {
			return nil, err
		}
		bw, err := strconv.ParseFloat(args[4], 64)
		if err != nil || bw <= 0 {
			return nil, fmt.Errorf("ptdf: bad bin width %q", args[4])
		}
		values, err := ParseHistogramValues(args[6])
		if err != nil {
			return nil, err
		}
		return PerfHistogramRec{
			Exec: args[0], Sets: sets, Tool: args[2], Metric: args[3],
			BinWidth: bw, Units: args[5], Values: values,
		}, nil
	default:
		return nil, fmt.Errorf("ptdf: unknown record kind %q", kind)
	}
}

// Reader streams records from a PTdf document.
type Reader struct {
	sc   *bufio.Scanner
	line int
}

// NewReader wraps an io.Reader in a PTdf record stream.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &Reader{sc: sc}
}

// Next returns the next record, io.EOF at end of input, or a parse error
// annotated with the line number. Blank lines and comments are skipped.
func (r *Reader) Next() (Record, error) {
	for r.sc.Scan() {
		r.line++
		rec, err := ParseLine(r.sc.Text())
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", r.line, err)
		}
		if rec == nil {
			continue
		}
		return rec, nil
	}
	if err := r.sc.Err(); err != nil {
		return nil, err
	}
	return nil, io.EOF
}

// ReadAll parses every record in the input.
func ReadAll(r io.Reader) ([]Record, error) {
	pr := NewReader(r)
	var out []Record
	for {
		rec, err := pr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// Writer streams records to a PTdf document.
type Writer struct {
	w     *bufio.Writer
	count int
}

// NewWriter wraps an io.Writer for PTdf output.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write emits one record.
func (w *Writer) Write(rec Record) error {
	if _, err := w.w.WriteString(FormatRecord(rec)); err != nil {
		return err
	}
	w.count++
	return w.w.WriteByte('\n')
}

// Comment emits a comment line.
func (w *Writer) Comment(text string) error {
	_, err := fmt.Fprintf(w.w, "# %s\n", text)
	return err
}

// Count reports how many records have been written.
func (w *Writer) Count() int { return w.count }

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }

// WriteAll emits all records and flushes.
func WriteAll(w io.Writer, recs []Record) error {
	pw := NewWriter(w)
	for _, rec := range recs {
		if err := pw.Write(rec); err != nil {
			return err
		}
	}
	return pw.Flush()
}
