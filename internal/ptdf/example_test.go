package ptdf_test

import (
	"fmt"
	"strings"

	"perftrack/internal/ptdf"
)

// A PTdf document mixes resource definitions and performance results
// (Figure 6 / Figure 9).
func ExampleReadAll() {
	doc := `# PTdf for one IRS run
Application irs
Execution irs-001 irs
Resource /irs application
PerfResult irs-001 /irs(primary) IRS "wall time" 98.5 seconds
`
	recs, err := ptdf.ReadAll(strings.NewReader(doc))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, rec := range recs {
		fmt.Printf("%T\n", rec)
	}
	// Output:
	// ptdf.ApplicationRec
	// ptdf.ExecutionRec
	// ptdf.ResourceRec
	// ptdf.PerfResultRec
}

// Resource sets carry focus types; multiple sets express caller/callee or
// sender/receiver relationships (§4.2).
func ExampleParseResourceSet() {
	sets, _ := ptdf.ParseResourceSet("/e1/p0(sender):/e1/p1(receiver)")
	for _, s := range sets {
		fmt.Println(s.Type, s.Names)
	}
	// Output:
	// sender [/e1/p0]
	// receiver [/e1/p1]
}
