package ptdf

import (
	"strings"
	"testing"
)

// FuzzParseLine checks that arbitrary input never panics the PTdf parser
// and that every accepted record re-serializes to a line that parses to
// an equivalent record (idempotent round trip).
func FuzzParseLine(f *testing.F) {
	seeds := []string{
		"Application irs",
		"ResourceType grid/machine",
		"Execution irs-001 irs",
		"Resource /irs application",
		"Resource /irs-001 execution irs-001",
		`ResourceAttribute /a "clock MHz" 2400 string`,
		"ResourceConstraint /e1/p8 /m/b/n16",
		`PerfResult e1 /irs,/MCR(primary) IRS "wall time" 12.5 seconds`,
		`PerfHistogram e1 /a(primary) Paradyn cpu 0.2 u nan,1.5,2.5`,
		"# comment",
		"",
		`Application "quoted \" name"`,
		"PerfResult e1 /a(sender):/b(receiver) t m 1 u",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		if strings.ContainsAny(line, "\n\r") {
			return // line-oriented format
		}
		rec, err := ParseLine(line)
		if err != nil || rec == nil {
			return
		}
		// Round trip: the formatted record must parse to itself.
		line2 := FormatRecord(rec)
		rec2, err := ParseLine(line2)
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", line2, err)
		}
		line3 := FormatRecord(rec2)
		if line2 != line3 {
			t.Fatalf("format not stable: %q vs %q", line2, line3)
		}
	})
}
