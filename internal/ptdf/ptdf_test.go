package ptdf

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"perftrack/internal/core"
)

func TestParseLineAllForms(t *testing.T) {
	cases := []struct {
		line string
		want Record
	}{
		{"Application irs", ApplicationRec{Name: "irs"}},
		{"ResourceType grid/machine", ResourceTypeRec{Type: "grid/machine"}},
		{"Execution irs-001 irs", ExecutionRec{Name: "irs-001", App: "irs"}},
		{"Resource /irs application", ResourceRec{Name: "/irs", Type: "application"}},
		{"Resource /irs-001 execution irs-001", ResourceRec{Name: "/irs-001", Type: "execution", Exec: "irs-001"}},
		{`ResourceAttribute /MCR/batch/n1/p0 "clock MHz" 2400 string`,
			ResourceAttributeRec{Resource: "/MCR/batch/n1/p0", Attr: "clock MHz", Value: "2400", AttrType: "string"}},
		{"ResourceConstraint /e1/p8 /MCR/batch/n16",
			ResourceConstraintRec{R1: "/e1/p8", R2: "/MCR/batch/n16"}},
		{`PerfResult irs-001 /irs,/MCR(primary) IRS "wall time" 12.5 seconds`,
			PerfResultRec{
				Exec: "irs-001",
				Sets: []ResourceSet{{Names: []core.ResourceName{"/irs", "/MCR"}, Type: core.FocusPrimary}},
				Tool: "IRS", Metric: "wall time", Value: 12.5, Units: "seconds",
			}},
	}
	for _, c := range cases {
		got, err := ParseLine(c.line)
		if err != nil {
			t.Fatalf("ParseLine(%q): %v", c.line, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseLine(%q) = %#v, want %#v", c.line, got, c.want)
		}
	}
}

func TestParseLineSkipsCommentsAndBlank(t *testing.T) {
	for _, line := range []string{"", "   ", "# a comment", "  # indented comment"} {
		got, err := ParseLine(line)
		if err != nil || got != nil {
			t.Errorf("ParseLine(%q) = %v, %v", line, got, err)
		}
	}
}

func TestParseLineErrors(t *testing.T) {
	bad := []string{
		"Bogus x",
		"Application",                            // missing field
		"Application a b",                        // extra field
		"ResourceType /leading/slash",            // bad type path
		"Resource relative application",          // bad name
		"Resource /a",                            // missing type
		"ResourceAttribute /a attr val num",      // bad attr type
		"ResourceAttribute /a attr rel resource", // resource attr value must be a name
		"ResourceConstraint /a rel",              // bad second name
		"PerfResult e1 /a(primary) tool m NaNope units",
		"PerfResult e1 /a(bogus) tool m 1 units", // bad focus type
		"PerfResult e1 /a tool m 1 units",        // missing (type)
		`Application "unterminated`,
	}
	for _, line := range bad {
		if _, err := ParseLine(line); err == nil {
			t.Errorf("ParseLine(%q) should fail", line)
		}
	}
}

func TestResourceSetMultiple(t *testing.T) {
	sets, err := ParseResourceSet("/e1/p0(sender):/e1/p1,/e1/p2(receiver)")
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 2 {
		t.Fatalf("sets = %v", sets)
	}
	if sets[0].Type != core.FocusSender || len(sets[0].Names) != 1 {
		t.Errorf("set 0 = %+v", sets[0])
	}
	if sets[1].Type != core.FocusReceiver || len(sets[1].Names) != 2 {
		t.Errorf("set 1 = %+v", sets[1])
	}
}

func TestResourceSetToleratesSpaces(t *testing.T) {
	sets, err := ParseResourceSet("/a , /b (primary) : /c (child)")
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 2 || len(sets[0].Names) != 2 || sets[1].Type != core.FocusChild {
		t.Errorf("sets = %+v", sets)
	}
}

func TestResourceSetRoundTrip(t *testing.T) {
	orig := []ResourceSet{
		{Names: []core.ResourceName{"/a", "/b/c"}, Type: core.FocusPrimary},
		{Names: []core.ResourceName{"/x"}, Type: core.FocusParent},
	}
	got, err := ParseResourceSet(FormatResourceSet(orig))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, orig) {
		t.Errorf("round trip = %+v", got)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		ApplicationRec{Name: "smg 2000"}, // space forces quoting
		ResourceTypeRec{Type: "time/interval"},
		ExecutionRec{Name: "e-1", App: "smg 2000"},
		ResourceRec{Name: "/e-1/process 0", Type: "execution/process", Exec: "e-1"},
		ResourceAttributeRec{Resource: "/e-1", Attr: "env \"PATH\"", Value: `/usr/bin:\bin`, AttrType: "string"},
		ResourceConstraintRec{R1: "/e-1/p0", R2: "/m/b/n0"},
		PerfResultRec{
			Exec: "e-1",
			Sets: []ResourceSet{{Names: []core.ResourceName{"/irs"}, Type: core.FocusPrimary}},
			Tool: "mpiP", Metric: "MPI time", Value: 0.125, Units: "seconds",
		},
	}
	for _, rec := range recs {
		line := FormatRecord(rec)
		got, err := ParseLine(line)
		if err != nil {
			t.Fatalf("round trip %q: %v", line, err)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Errorf("round trip %q:\ngot  %#v\nwant %#v", line, got, rec)
		}
	}
}

func TestQuoteFieldProperty(t *testing.T) {
	f := func(s string) bool {
		if strings.ContainsAny(s, "\n\r") {
			return true // PTdf is line-oriented; newlines are out of scope
		}
		fields, err := splitFields(quoteField(s))
		return err == nil && len(fields) == 1 && fields[0] == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReaderWriterStream(t *testing.T) {
	doc := `# PTdf generated during a PerfTrack study
Application irs
Execution irs-001 irs

Resource /irs application
Resource /irs-001 execution irs-001
ResourceAttribute /irs-001 nprocs 64 string
PerfResult irs-001 /irs(primary) IRS wallclock 98.1 seconds
`
	recs, err := ReadAll(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 {
		t.Fatalf("records = %d", len(recs))
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, recs); err != nil {
		t.Fatal(err)
	}
	recs2, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, recs2) {
		t.Error("write/read round trip mismatch")
	}
}

func TestReaderReportsLineNumbers(t *testing.T) {
	doc := "Application a\nBROKEN LINE HERE\n"
	_, err := ReadAll(strings.NewReader(doc))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v, want line 2 annotation", err)
	}
}

func TestReaderNextEOF(t *testing.T) {
	r := NewReader(strings.NewReader("# only a comment\n"))
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("err = %v, want EOF", err)
	}
}

func TestWriterCountAndComment(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Comment("header")
	w.Write(ApplicationRec{Name: "a"})
	w.Write(ExecutionRec{Name: "e", App: "a"})
	w.Flush()
	if w.Count() != 2 {
		t.Errorf("Count = %d", w.Count())
	}
	if !strings.HasPrefix(buf.String(), "# header\n") {
		t.Errorf("output = %q", buf.String())
	}
}

func TestPerfResultContexts(t *testing.T) {
	rec := PerfResultRec{
		Sets: []ResourceSet{
			{Names: []core.ResourceName{"/a"}, Type: core.FocusSender},
			{Names: []core.ResourceName{"/b"}, Type: core.FocusReceiver},
		},
	}
	ctxs := rec.Contexts()
	if len(ctxs) != 2 || ctxs[0].Type != core.FocusSender || ctxs[1].Resources[0] != "/b" {
		t.Errorf("Contexts = %+v", ctxs)
	}
}

func TestPerfHistogramRoundTrip(t *testing.T) {
	rec := PerfHistogramRec{
		Exec: "e1",
		Sets: []ResourceSet{{Names: []core.ResourceName{"/app", "/e1"}, Type: core.FocusPrimary}},
		Tool: "Paradyn", Metric: "cpu_inclusive", BinWidth: 0.2,
		Units:  "units/second",
		Values: []float64{math.NaN(), 1.5, 0, 2.25e3},
	}
	line := FormatRecord(rec)
	got, err := ParseLine(line)
	if err != nil {
		t.Fatalf("ParseLine(%q): %v", line, err)
	}
	h := got.(PerfHistogramRec)
	if h.Exec != rec.Exec || h.Metric != rec.Metric || h.BinWidth != 0.2 || h.Units != rec.Units {
		t.Errorf("header = %+v", h)
	}
	if len(h.Values) != 4 || !math.IsNaN(h.Values[0]) || h.Values[3] != 2250 {
		t.Errorf("values = %v", h.Values)
	}
}

func TestPerfHistogramParseErrors(t *testing.T) {
	bad := []string{
		"PerfHistogram e1 /a(primary) t m 0 u 1,2",   // zero bin width
		"PerfHistogram e1 /a(primary) t m 0.2 u",     // missing values
		"PerfHistogram e1 /a(primary) t m 0.2 u x,y", // bad values
		`PerfHistogram e1 /a(primary) t m 0.2 u ""`,  // empty values
	}
	for _, line := range bad {
		if _, err := ParseLine(line); err == nil {
			t.Errorf("ParseLine(%q) should fail", line)
		}
	}
}

func TestHistogramValuesRoundTripProperty(t *testing.T) {
	f := func(raw []float64, nanMask []bool) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsInf(v, 0) || math.IsNaN(v) {
				v = 0
			}
			vals[i] = v
			if i < len(nanMask) && nanMask[i] {
				vals[i] = math.NaN()
			}
		}
		got, err := ParseHistogramValues(FormatHistogramValues(vals))
		if err != nil || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if math.IsNaN(vals[i]) != math.IsNaN(got[i]) {
				return false
			}
			if !math.IsNaN(vals[i]) && got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLargeValueFormats(t *testing.T) {
	rec := PerfResultRec{
		Exec: "e", Sets: []ResourceSet{{Names: []core.ResourceName{"/a"}, Type: core.FocusPrimary}},
		Tool: "t", Metric: "m", Value: 1.23456789e12, Units: "ops",
	}
	got, err := ParseLine(FormatRecord(rec))
	if err != nil {
		t.Fatal(err)
	}
	if got.(PerfResultRec).Value != rec.Value {
		t.Errorf("value round trip = %v", got.(PerfResultRec).Value)
	}
}
