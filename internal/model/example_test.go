package model_test

import (
	"fmt"

	"perftrack/internal/model"
)

// Fit a scaling model to measured run times and predict an unmeasured
// process count (§6 future work).
func ExampleFitScaling() {
	points := []model.Point{
		{Procs: 1, Value: 65.0}, // 1 + 64/1
		{Procs: 2, Value: 33.0},
		{Procs: 4, Value: 17.0},
		{Procs: 8, Value: 9.0},
		{Procs: 16, Value: 5.0},
	}
	m, err := model.FitScaling(points)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("R^2 = %.3f\n", m.R2(points))
	fmt.Printf("T(32) = %.2f\n", m.Predict(32))
	// Output:
	// R^2 = 1.000
	// T(32) = 3.00
}
