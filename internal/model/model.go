// Package model implements the paper's final future-work item (§6):
// incorporating performance predictions and models into PerfTrack for
// direct comparison to actual program runs. A scaling model
//
//	T(p) = a + b/p + c·log2(p)
//
// (serial fraction, perfectly-parallel fraction, and a logarithmic
// communication/overhead term) is fitted to measured values by linear
// least squares. Predictions are emitted as ordinary PTdf performance
// results under a synthetic execution with tool "model", so the §6
// comparison operators align them against real executions with no
// special cases.
package model

import (
	"fmt"
	"math"
	"sort"

	"perftrack/internal/core"
	"perftrack/internal/ptdf"
)

// Point is one measured (process count, value) observation.
type Point struct {
	Procs int
	Value float64
}

// ScalingModel is a fitted T(p) = A + B/p + C·log2(p) model.
type ScalingModel struct {
	A, B, C float64
	Metric  string
	Units   string
}

// Predict evaluates the model at a process count.
func (m *ScalingModel) Predict(procs int) float64 {
	if procs < 1 {
		procs = 1
	}
	p := float64(procs)
	return m.A + m.B/p + m.C*math.Log2(p)
}

// String renders the fitted form.
func (m *ScalingModel) String() string {
	return fmt.Sprintf("T(p) = %.4g + %.4g/p + %.4g*log2(p)", m.A, m.B, m.C)
}

// FitScaling fits the model to measured points by least squares over the
// basis {1, 1/p, log2(p)}. At least three distinct process counts are
// required.
func FitScaling(points []Point) (*ScalingModel, error) {
	distinct := make(map[int]bool)
	for _, pt := range points {
		if pt.Procs < 1 {
			return nil, fmt.Errorf("model: process count %d < 1", pt.Procs)
		}
		distinct[pt.Procs] = true
	}
	if len(distinct) < 3 {
		return nil, fmt.Errorf("model: need >= 3 distinct process counts, have %d", len(distinct))
	}
	// Normal equations: (XᵀX) w = Xᵀy with X rows [1, 1/p, log2 p].
	var xtx [3][3]float64
	var xty [3]float64
	for _, pt := range points {
		p := float64(pt.Procs)
		row := [3]float64{1, 1 / p, math.Log2(p)}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				xtx[i][j] += row[i] * row[j]
			}
			xty[i] += row[i] * pt.Value
		}
	}
	w, err := solve3(xtx, xty)
	if err != nil {
		return nil, err
	}
	return &ScalingModel{A: w[0], B: w[1], C: w[2]}, nil
}

// solve3 solves a 3x3 linear system by Gaussian elimination with partial
// pivoting.
func solve3(a [3][3]float64, b [3]float64) ([3]float64, error) {
	var x [3]float64
	// Augment.
	var m [3][4]float64
	for i := 0; i < 3; i++ {
		copy(m[i][:3], a[i][:])
		m[i][3] = b[i]
	}
	for col := 0; col < 3; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return x, fmt.Errorf("model: singular system (degenerate process counts)")
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := col + 1; r < 3; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c < 4; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	for i := 2; i >= 0; i-- {
		sum := m[i][3]
		for j := i + 1; j < 3; j++ {
			sum -= m[i][j] * x[j]
		}
		x[i] = sum / m[i][i]
	}
	return x, nil
}

// R2 reports the coefficient of determination of the model over points.
func (m *ScalingModel) R2(points []Point) float64 {
	if len(points) == 0 {
		return math.NaN()
	}
	mean := 0.0
	for _, pt := range points {
		mean += pt.Value
	}
	mean /= float64(len(points))
	var ssRes, ssTot float64
	for _, pt := range points {
		d := pt.Value - m.Predict(pt.Procs)
		ssRes += d * d
		t := pt.Value - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return math.NaN()
	}
	return 1 - ssRes/ssTot
}

// Prediction is one model output at a process count.
type Prediction struct {
	Procs int
	Value float64
}

// PredictRange evaluates the model at each process count, sorted.
func (m *ScalingModel) PredictRange(procs []int) []Prediction {
	out := make([]Prediction, 0, len(procs))
	for _, p := range procs {
		out = append(out, Prediction{Procs: p, Value: m.Predict(p)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Procs < out[j].Procs })
	return out
}

// ToPTdfExecName names the synthetic execution holding the prediction
// for one process count.
func ToPTdfExecName(prefix string, procs int) string {
	return fmt.Sprintf("%s-np%03d", prefix, procs)
}

// ToPTdf emits the predictions as performance results of a synthetic
// execution (one per process count) with tool "model", in a context of
// application + the given portable context resources. Loading these and
// running compare.Executions against a real run compares model to
// measurement directly.
func ToPTdf(app, execPrefix, metric, units string, context []core.ResourceName,
	preds []Prediction) []ptdf.Record {
	var recs []ptdf.Record
	recs = append(recs, ptdf.ApplicationRec{Name: app})
	appRes := core.ResourceName("/" + app)
	recs = append(recs, ptdf.ResourceRec{Name: appRes, Type: "application"})
	for _, pr := range preds {
		execName := ToPTdfExecName(execPrefix, pr.Procs)
		recs = append(recs, ptdf.ExecutionRec{Name: execName, App: app})
		execRes := core.ResourceName("/" + execName)
		recs = append(recs,
			ptdf.ResourceRec{Name: execRes, Type: "execution", Exec: execName},
			ptdf.ResourceAttributeRec{Resource: execRes, Attr: "number of processes",
				Value: fmt.Sprintf("%d", pr.Procs), AttrType: "string"},
			ptdf.ResourceAttributeRec{Resource: execRes, Attr: "predicted",
				Value: "true", AttrType: "string"},
		)
		ctx := append([]core.ResourceName{appRes}, context...)
		recs = append(recs, ptdf.PerfResultRec{
			Exec:   execName,
			Sets:   []ptdf.ResourceSet{{Names: ctx, Type: core.FocusPrimary}},
			Tool:   "model",
			Metric: metric,
			Value:  pr.Value,
			Units:  units,
		})
	}
	return recs
}
