package model

import (
	"math"
	"testing"
	"testing/quick"

	"perftrack/internal/compare"
	"perftrack/internal/core"
	"perftrack/internal/datastore"
	"perftrack/internal/reldb"
)

func syntheticPoints(a, b, c float64, procs []int) []Point {
	var pts []Point
	for _, p := range procs {
		pf := float64(p)
		pts = append(pts, Point{Procs: p, Value: a + b/pf + c*math.Log2(pf)})
	}
	return pts
}

func TestFitRecoversExactCoefficients(t *testing.T) {
	pts := syntheticPoints(2.0, 100.0, 0.5, []int{1, 2, 4, 8, 16, 32, 64})
	m, err := FitScaling(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.A-2.0) > 1e-6 || math.Abs(m.B-100.0) > 1e-6 || math.Abs(m.C-0.5) > 1e-6 {
		t.Errorf("fit = %v", m)
	}
	if r2 := m.R2(pts); math.Abs(r2-1) > 1e-9 {
		t.Errorf("R2 = %v, want 1", r2)
	}
}

func TestFitWithNoiseStaysClose(t *testing.T) {
	pts := syntheticPoints(5, 200, 1, []int{1, 2, 4, 8, 16, 32, 64, 128})
	// Deterministic pseudo-noise.
	for i := range pts {
		pts[i].Value *= 1 + 0.01*math.Sin(float64(i))
	}
	m, err := FitScaling(pts)
	if err != nil {
		t.Fatal(err)
	}
	if r2 := m.R2(pts); r2 < 0.99 {
		t.Errorf("R2 = %v with 1%% noise", r2)
	}
	// Prediction interpolates sensibly.
	if v := m.Predict(24); v <= m.Predict(128) || v >= m.Predict(2) {
		t.Errorf("Predict(24)=%v not between Predict(128)=%v and Predict(2)=%v",
			v, m.Predict(128), m.Predict(2))
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := FitScaling(nil); err == nil {
		t.Error("empty fit accepted")
	}
	if _, err := FitScaling([]Point{{1, 1}, {2, 2}}); err == nil {
		t.Error("two distinct counts accepted")
	}
	// Repeated counts do not add rank.
	if _, err := FitScaling([]Point{{4, 1}, {4, 2}, {4, 3}}); err == nil {
		t.Error("one distinct count accepted")
	}
	if _, err := FitScaling([]Point{{0, 1}, {2, 2}, {4, 3}}); err == nil {
		t.Error("zero process count accepted")
	}
}

func TestFitResidualOrthogonalityProperty(t *testing.T) {
	// Least squares leaves residuals orthogonal to the constant basis
	// function: the residual sum is ~0 for any fittable data.
	f := func(v1, v2, v3, v4 uint8) bool {
		pts := []Point{
			{1, float64(v1) + 1}, {2, float64(v2) + 1},
			{4, float64(v3) + 1}, {8, float64(v4) + 1},
		}
		m, err := FitScaling(pts)
		if err != nil {
			return true
		}
		sum := 0.0
		for _, pt := range pts {
			sum += pt.Value - m.Predict(pt.Procs)
		}
		return math.Abs(sum) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPredictClampsLowProcs(t *testing.T) {
	m := &ScalingModel{A: 1, B: 2, C: 3}
	if m.Predict(0) != m.Predict(1) || m.Predict(-5) != m.Predict(1) {
		t.Error("process counts < 1 should clamp to 1")
	}
}

func TestPredictRangeSorted(t *testing.T) {
	m := &ScalingModel{A: 1, B: 16, C: 0}
	preds := m.PredictRange([]int{16, 2, 8})
	if len(preds) != 3 || preds[0].Procs != 2 || preds[2].Procs != 16 {
		t.Errorf("preds = %+v", preds)
	}
}

func TestR2EdgeCases(t *testing.T) {
	m := &ScalingModel{A: 5}
	if !math.IsNaN(m.R2(nil)) {
		t.Error("R2 of no points should be NaN")
	}
	// Constant data perfectly predicted.
	pts := []Point{{1, 5}, {2, 5}, {4, 5}}
	if m.R2(pts) != 1 {
		t.Errorf("R2 = %v for exact constant fit", m.R2(pts))
	}
}

// TestModelVersusActualViaCompare exercises the §6 workflow end to end:
// fit a model on measured runs, store its predictions, and align
// prediction vs measurement with the comparison operators.
func TestModelVersusActualViaCompare(t *testing.T) {
	s, err := datastore.Open(reldb.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddResource("/app", "application", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddResource("/appcode/main.c/solve", "build/module/function", ""); err != nil {
		t.Fatal(err)
	}
	ctx := []core.ResourceName{"/appcode/main.c/solve"}

	// "Measured" runs follow T(p) = 1 + 64/p with 2% deviation at p=8.
	var pts []Point
	for _, p := range []int{2, 4, 8, 16, 32} {
		v := 1 + 64/float64(p)
		if p == 8 {
			v *= 1.02
		}
		execName := formatExec("actual", p)
		if _, err := s.AddExecution(execName, "app"); err != nil {
			t.Fatal(err)
		}
		if _, err := s.AddPerfResult(&core.PerformanceResult{
			Execution: execName, Metric: "wall time", Value: v, Units: "seconds",
			Tool:     "bench",
			Contexts: []core.Context{core.NewContext(append([]core.ResourceName{"/app"}, ctx...)...)},
		}); err != nil {
			t.Fatal(err)
		}
		pts = append(pts, Point{Procs: p, Value: v})
	}

	m, err := FitScaling(pts)
	if err != nil {
		t.Fatal(err)
	}
	if r2 := m.R2(pts); r2 < 0.999 {
		t.Fatalf("R2 = %v", r2)
	}
	// Store predictions at the measured counts.
	recs := ToPTdf("app", "model", "wall time", "seconds", ctx,
		m.PredictRange([]int{2, 4, 8, 16, 32}))
	for i, rec := range recs {
		if err := s.LoadRecord(rec); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}

	// Direct comparison, prediction vs actual, at p=8.
	cmp, err := compare.Executions(s, formatExec("actual", 8), "model-np008")
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Pairs) != 1 {
		t.Fatalf("aligned pairs = %d", len(cmp.Pairs))
	}
	// The measured run deviated +2% from the trend; model vs actual ratio
	// reflects it within the fit error.
	ratio := cmp.Pairs[0].Ratio()
	if ratio > 1.0 || ratio < 0.95 {
		t.Errorf("model/actual ratio = %v, want just under 1", ratio)
	}
}

func formatExec(prefix string, p int) string {
	return ToPTdfExecName(prefix, p)
}

func TestToPTdfExecNameFormat(t *testing.T) {
	if got := ToPTdfExecName("model", 8); got != "model-np008" {
		t.Errorf("name = %q", got)
	}
}
