// Package mpip generates and parses mpiP-style lightweight MPI profiling
// reports, the third data kind in the §4.2 noise study (Figure 8). An
// mpiP report breaks measurements down by process or whole execution, MPI
// function, and callsite of the MPI function; some measurements report
// time in each MPI function according to the calling function. That
// caller/callee structure is what motivated PerfTrack's multiple resource
// sets per performance result — the parser emits a parent (caller) and
// child (MPI function) resource set for each callsite value, so no
// granularity is lost.
package mpip

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"perftrack/internal/core"
	"perftrack/internal/ptdf"
)

// mpiCalls are the MPI operations the generator samples.
var mpiCalls = []string{
	"Allreduce", "Isend", "Irecv", "Waitall", "Barrier", "Bcast",
	"Reduce", "Allgather",
}

// callerFuncs are application functions that appear as callsite parents.
var callerFuncs = []string{
	"main", "hypre_SMGSolve", "hypre_SMGRelax", "hypre_StructInnerProd",
	"hypre_SemiRestrict", "hypre_SemiInterp",
}

// Run describes one generated mpiP capture.
type Run struct {
	Execution string
	Command   string
	NProcs    int
	Callsites int // number of distinct callsites to fabricate
	Seed      int64
}

// Callsite is one MPI call location.
type Callsite struct {
	ID     int
	File   string
	Line   int
	Parent string // calling function
	Call   string // MPI operation
}

// TaskTime is per-task app/MPI time.
type TaskTime struct {
	Task    int // -1 for the aggregate "*" row
	AppTime float64
	MPITime float64
}

// SiteStat is one callsite timing row: per rank, or aggregate when
// Rank == -1. Times are milliseconds, as in mpiP.
type SiteStat struct {
	Site  int
	Rank  int // -1 means "*"
	Count int64
	Max   float64
	Mean  float64
	Min   float64
}

// Report is a parsed mpiP report.
type Report struct {
	Command   string
	Version   string
	NProcs    int
	Tasks     []TaskTime
	Callsites []Callsite
	SiteStats []SiteStat
}

// Generate writes an mpiP-format report.
func Generate(w io.Writer, run Run) error {
	rng := rand.New(rand.NewSource(run.Seed))
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "@ mpiP\n")
	fmt.Fprintf(bw, "@ Command : %s\n", run.Command)
	fmt.Fprintf(bw, "@ Version : 2.8.2\n")
	fmt.Fprintf(bw, "@ MPI Task Assignment : %d tasks\n", run.NProcs)
	fmt.Fprintf(bw, "\n@--- MPI Time (seconds) ---\n")
	fmt.Fprintf(bw, "%-6s %12s %12s %8s\n", "Task", "AppTime", "MPITime", "MPI%")
	totalApp, totalMPI := 0.0, 0.0
	for t := 0; t < run.NProcs; t++ {
		app := 30 + rng.Float64()*5
		mpi := app * (0.25 + rng.Float64()*0.15)
		totalApp += app
		totalMPI += mpi
		fmt.Fprintf(bw, "%-6d %12.2f %12.2f %8.2f\n", t, app, mpi, mpi/app*100)
	}
	fmt.Fprintf(bw, "%-6s %12.2f %12.2f %8.2f\n", "*", totalApp, totalMPI, totalMPI/totalApp*100)

	nSites := run.Callsites
	if nSites <= 0 {
		nSites = 12
	}
	fmt.Fprintf(bw, "\n@--- Callsites: %d ---\n", nSites)
	fmt.Fprintf(bw, "%3s %3s %-20s %5s %-24s %s\n", "ID", "Lev", "File/Address", "Line", "Parent_Funct", "MPI_Call")
	sites := make([]Callsite, nSites)
	for i := range sites {
		sites[i] = Callsite{
			ID:     i + 1,
			File:   "smg2000.c",
			Line:   100 + rng.Intn(2000),
			Parent: callerFuncs[rng.Intn(len(callerFuncs))],
			Call:   mpiCalls[rng.Intn(len(mpiCalls))],
		}
		fmt.Fprintf(bw, "%3d %3d %-20s %5d %-24s %s\n",
			sites[i].ID, 0, sites[i].File, sites[i].Line, sites[i].Parent, sites[i].Call)
	}

	fmt.Fprintf(bw, "\n@--- Callsite Time statistics (all, milliseconds): %d ---\n", nSites*(run.NProcs+1))
	fmt.Fprintf(bw, "%-16s %5s %5s %8s %10s %10s %10s\n", "Name", "Site", "Rank", "Count", "Max", "Mean", "Min")
	for _, site := range sites {
		var aggCount int64
		var aggMax, aggMeanSum, aggMin float64
		aggMin = 1e300
		for t := 0; t < run.NProcs; t++ {
			count := int64(50 + rng.Intn(500))
			mean := 0.01 + rng.Float64()*0.5
			maxV := mean * (1.5 + rng.Float64())
			minV := mean * (0.2 + rng.Float64()*0.5)
			aggCount += count
			aggMeanSum += mean
			if maxV > aggMax {
				aggMax = maxV
			}
			if minV < aggMin {
				aggMin = minV
			}
			fmt.Fprintf(bw, "%-16s %5d %5d %8d %10.3f %10.3f %10.3f\n",
				site.Call, site.ID, t, count, maxV, mean, minV)
		}
		fmt.Fprintf(bw, "%-16s %5d %5s %8d %10.3f %10.3f %10.3f\n",
			site.Call, site.ID, "*", aggCount, aggMax, aggMeanSum/float64(run.NProcs), aggMin)
	}
	return bw.Flush()
}

// Parse reads an mpiP report.
func Parse(r io.Reader) (*Report, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	rep := &Report{}
	section := ""
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		switch {
		case strings.HasPrefix(text, "@ Command :"):
			rep.Command = strings.TrimSpace(strings.TrimPrefix(text, "@ Command :"))
			continue
		case strings.HasPrefix(text, "@ Version :"):
			rep.Version = strings.TrimSpace(strings.TrimPrefix(text, "@ Version :"))
			continue
		case strings.HasPrefix(text, "@ MPI Task Assignment :"):
			fields := strings.Fields(strings.TrimPrefix(text, "@ MPI Task Assignment :"))
			if len(fields) > 0 {
				if n, err := strconv.Atoi(fields[0]); err == nil {
					rep.NProcs = n
				}
			}
			continue
		case strings.HasPrefix(text, "@---"):
			switch {
			case strings.Contains(text, "MPI Time"):
				section = "time"
			case strings.Contains(text, "Callsite Time statistics"):
				section = "sitestats"
			case strings.Contains(text, "Callsites"):
				section = "callsites"
			default:
				section = ""
			}
			continue
		case strings.HasPrefix(text, "@"):
			continue
		}
		switch section {
		case "time":
			if strings.HasPrefix(text, "Task") {
				continue
			}
			fields := strings.Fields(text)
			if len(fields) != 4 {
				return nil, fmt.Errorf("mpip: line %d: bad task time row", line)
			}
			tt := TaskTime{Task: -1}
			if fields[0] != "*" {
				n, err := strconv.Atoi(fields[0])
				if err != nil {
					return nil, fmt.Errorf("mpip: line %d: bad task %q", line, fields[0])
				}
				tt.Task = n
			}
			var err error
			if tt.AppTime, err = strconv.ParseFloat(fields[1], 64); err != nil {
				return nil, fmt.Errorf("mpip: line %d: %w", line, err)
			}
			if tt.MPITime, err = strconv.ParseFloat(fields[2], 64); err != nil {
				return nil, fmt.Errorf("mpip: line %d: %w", line, err)
			}
			rep.Tasks = append(rep.Tasks, tt)
		case "callsites":
			if strings.HasPrefix(text, "ID") {
				continue
			}
			fields := strings.Fields(text)
			if len(fields) != 6 {
				return nil, fmt.Errorf("mpip: line %d: bad callsite row", line)
			}
			id, err := strconv.Atoi(fields[0])
			if err != nil {
				return nil, fmt.Errorf("mpip: line %d: bad callsite id", line)
			}
			ln, err := strconv.Atoi(fields[3])
			if err != nil {
				return nil, fmt.Errorf("mpip: line %d: bad line number", line)
			}
			rep.Callsites = append(rep.Callsites, Callsite{
				ID: id, File: fields[2], Line: ln, Parent: fields[4], Call: fields[5],
			})
		case "sitestats":
			if strings.HasPrefix(text, "Name") {
				continue
			}
			fields := strings.Fields(text)
			if len(fields) != 7 {
				return nil, fmt.Errorf("mpip: line %d: bad site stat row", line)
			}
			st := SiteStat{Rank: -1}
			var err error
			if st.Site, err = strconv.Atoi(fields[1]); err != nil {
				return nil, fmt.Errorf("mpip: line %d: bad site", line)
			}
			if fields[2] != "*" {
				if st.Rank, err = strconv.Atoi(fields[2]); err != nil {
					return nil, fmt.Errorf("mpip: line %d: bad rank", line)
				}
			}
			if st.Count, err = strconv.ParseInt(fields[3], 10, 64); err != nil {
				return nil, fmt.Errorf("mpip: line %d: bad count", line)
			}
			if st.Max, err = strconv.ParseFloat(fields[4], 64); err != nil {
				return nil, fmt.Errorf("mpip: line %d: bad max", line)
			}
			if st.Mean, err = strconv.ParseFloat(fields[5], 64); err != nil {
				return nil, fmt.Errorf("mpip: line %d: bad mean", line)
			}
			if st.Min, err = strconv.ParseFloat(fields[6], 64); err != nil {
				return nil, fmt.Errorf("mpip: line %d: bad min", line)
			}
			rep.SiteStats = append(rep.SiteStats, st)
		default:
			return nil, fmt.Errorf("mpip: line %d: text outside any section: %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Tasks) == 0 {
		return nil, fmt.Errorf("mpip: no task time section")
	}
	return rep, nil
}

// ToPTdf converts a parsed report. Per-task app/MPI times become results
// on process resources; callsite statistics become results whose contexts
// carry TWO extra resource sets — the calling function as a parent set and
// the MPI function as a child set — recording caller and callee with no
// loss of granularity (§4.2).
func (rep *Report) ToPTdf(app, execName string, machineRes core.ResourceName) []ptdf.Record {
	var recs []ptdf.Record
	recs = append(recs,
		ptdf.ApplicationRec{Name: app},
		ptdf.ExecutionRec{Name: execName, App: app},
	)
	appRes := core.ResourceName("/" + app)
	recs = append(recs, ptdf.ResourceRec{Name: appRes, Type: "application"})
	execRes := core.ResourceName("/" + execName)
	recs = append(recs, ptdf.ResourceRec{Name: execRes, Type: "execution", Exec: execName})
	if rep.Command != "" {
		recs = append(recs, ptdf.ResourceAttributeRec{
			Resource: execRes, Attr: "command", Value: rep.Command, AttrType: "string",
		})
	}

	baseCtx := []core.ResourceName{appRes, execRes}
	if machineRes != "" {
		baseCtx = append(baseCtx, machineRes)
	}
	emit := func(metric string, value float64, units string, sets []ptdf.ResourceSet) {
		recs = append(recs, ptdf.PerfResultRec{
			Exec: execName, Sets: sets, Tool: "mpiP",
			Metric: metric, Value: value, Units: units,
		})
	}

	// Per-task (and whole-execution "*") app/MPI time.
	procRes := func(task int) core.ResourceName {
		return execRes.Child(fmt.Sprintf("p%d", task))
	}
	seenProc := make(map[int]bool)
	ensureProc := func(task int) core.ResourceName {
		pr := procRes(task)
		if !seenProc[task] {
			seenProc[task] = true
			recs = append(recs, ptdf.ResourceRec{Name: pr, Type: "execution/process", Exec: execName})
		}
		return pr
	}
	for _, tt := range rep.Tasks {
		ctx := append([]core.ResourceName{}, baseCtx...)
		if tt.Task >= 0 {
			ctx = append(ctx, ensureProc(tt.Task))
		}
		sets := []ptdf.ResourceSet{{Names: ctx, Type: core.FocusPrimary}}
		emit("AppTime", tt.AppTime, "seconds", sets)
		emit("MPITime", tt.MPITime, "seconds", sets)
	}

	// Code resources: calling functions (environment of the app code) and
	// MPI functions (the MPI library module).
	codeRoot := core.ResourceName("/" + app + "-code")
	recs = append(recs, ptdf.ResourceRec{Name: codeRoot, Type: "build"})
	mpiRoot := core.ResourceName("/" + execName + "-mpilib")
	recs = append(recs, ptdf.ResourceRec{Name: mpiRoot, Type: "environment"})
	mpiModule := mpiRoot.Child("libmpi")
	recs = append(recs, ptdf.ResourceRec{Name: mpiModule, Type: "environment/module"})

	siteByID := make(map[int]Callsite, len(rep.Callsites))
	seenFile := make(map[string]bool)
	seenFn := make(map[string]bool)
	seenMPI := make(map[string]bool)
	for _, cs := range rep.Callsites {
		siteByID[cs.ID] = cs
		fileRes := codeRoot.Child(cs.File)
		if !seenFile[cs.File] {
			seenFile[cs.File] = true
			recs = append(recs, ptdf.ResourceRec{Name: fileRes, Type: "build/module"})
		}
		if !seenFn[cs.Parent] {
			seenFn[cs.Parent] = true
			recs = append(recs, ptdf.ResourceRec{Name: fileRes.Child(cs.Parent), Type: "build/module/function"})
		}
		if !seenMPI[cs.Call] {
			seenMPI[cs.Call] = true
			recs = append(recs, ptdf.ResourceRec{
				Name: mpiModule.Child("MPI_" + cs.Call), Type: "environment/module/function",
			})
		}
	}

	// Callsite statistics with caller (parent) and callee (child) sets.
	for _, st := range rep.SiteStats {
		cs, ok := siteByID[st.Site]
		if !ok {
			continue
		}
		ctx := append([]core.ResourceName{}, baseCtx...)
		if st.Rank >= 0 {
			ctx = append(ctx, ensureProc(st.Rank))
		}
		callerRes := codeRoot.Child(cs.File).Child(cs.Parent)
		calleeRes := mpiModule.Child("MPI_" + cs.Call)
		sets := []ptdf.ResourceSet{
			{Names: ctx, Type: core.FocusPrimary},
			{Names: []core.ResourceName{callerRes}, Type: core.FocusParent},
			{Names: []core.ResourceName{calleeRes}, Type: core.FocusChild},
		}
		site := fmt.Sprintf("site %d ", st.Site)
		emit(site+"call count", float64(st.Count), "calls", sets)
		emit(site+"max time", st.Max, "milliseconds", sets)
		emit(site+"mean time", st.Mean, "milliseconds", sets)
		emit(site+"min time", st.Min, "milliseconds", sets)
	}
	return recs
}
