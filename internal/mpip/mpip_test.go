package mpip

import (
	"bytes"
	"strings"
	"testing"

	"perftrack/internal/core"
	"perftrack/internal/datastore"
	"perftrack/internal/ptdf"
	"perftrack/internal/reldb"
)

func genReport(t *testing.T, run Run) *Report {
	t.Helper()
	var buf bytes.Buffer
	if err := Generate(&buf, run); err != nil {
		t.Fatal(err)
	}
	rep, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return rep
}

func defaultRun() Run {
	return Run{Execution: "smg-uv-001", Command: "./smg2000 -n 35 35 35",
		NProcs: 8, Callsites: 12, Seed: 1}
}

func TestGenerateParseRoundTrip(t *testing.T) {
	rep := genReport(t, defaultRun())
	if rep.Command != "./smg2000 -n 35 35 35" || rep.Version != "2.8.2" || rep.NProcs != 8 {
		t.Errorf("header = %+v", rep)
	}
	if len(rep.Tasks) != 9 { // 8 ranks + aggregate "*"
		t.Errorf("tasks = %d", len(rep.Tasks))
	}
	if rep.Tasks[len(rep.Tasks)-1].Task != -1 {
		t.Error("aggregate row should parse as Task -1")
	}
	if len(rep.Callsites) != 12 {
		t.Errorf("callsites = %d", len(rep.Callsites))
	}
	if len(rep.SiteStats) != 12*9 {
		t.Errorf("site stats = %d, want %d", len(rep.SiteStats), 12*9)
	}
	for _, st := range rep.SiteStats {
		if st.Min > st.Mean || st.Mean > st.Max {
			t.Fatalf("stat ordering violated: %+v", st)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"@ mpiP\n",                               // no task section
		"stray text\n",                           // outside section
		"@--- MPI Time (seconds) ---\n0 1.0\n",   // short row
		"@--- MPI Time (seconds) ---\nx 1 1 1\n", // bad task
		"@--- MPI Time (seconds) ---\n0 1 1 1\n@--- Callsites: 1 ---\n1 0 f.c x main Send\n",
	}
	for _, doc := range bad {
		if _, err := Parse(strings.NewReader(doc)); err == nil {
			t.Errorf("Parse(%q...) should fail", doc[:min(len(doc), 30)])
		}
	}
}

func TestToPTdfCallerCalleeResourceSets(t *testing.T) {
	rep := genReport(t, defaultRun())
	recs := rep.ToPTdf("smg2000", "smg-uv-001", "/UVGrid/UV")
	// Every callsite result carries three resource sets: primary, parent
	// (caller), child (MPI callee).
	foundMulti := 0
	for _, rec := range recs {
		pr, ok := rec.(ptdf.PerfResultRec)
		if !ok || !strings.HasPrefix(pr.Metric, "site ") {
			continue
		}
		if len(pr.Sets) != 3 {
			t.Fatalf("callsite result has %d sets: %+v", len(pr.Sets), pr)
		}
		types := map[core.FocusType]bool{}
		for _, set := range pr.Sets {
			types[set.Type] = true
		}
		if !types[core.FocusPrimary] || !types[core.FocusParent] || !types[core.FocusChild] {
			t.Fatalf("set types = %v", types)
		}
		foundMulti++
	}
	if foundMulti == 0 {
		t.Fatal("no callsite results emitted")
	}
}

func TestToPTdfShapeMatchesTable1(t *testing.T) {
	// Table 1 SMG-UV: ~259 metrics, ~9,777 results per execution from
	// benchmark+mpiP+PMAPI combined; mpiP contributes the bulk. With 64
	// ranks and 36 callsites: 65*2 task results + 36*65*4 site results.
	rep := genReport(t, Run{Execution: "e", NProcs: 64, Callsites: 36, Seed: 2})
	recs := rep.ToPTdf("smg2000", "e", "")
	results := 0
	metrics := map[string]bool{}
	for _, rec := range recs {
		if pr, ok := rec.(ptdf.PerfResultRec); ok {
			results++
			metrics[pr.Metric] = true
		}
	}
	want := 65*2 + 36*65*4
	if results != want {
		t.Errorf("results = %d, want %d", results, want)
	}
	if len(metrics) != 2+36*4 {
		t.Errorf("metrics = %d, want %d", len(metrics), 2+36*4)
	}
}

func TestToPTdfLoadsIntoStore(t *testing.T) {
	rep := genReport(t, Run{Execution: "e", NProcs: 4, Callsites: 6, Seed: 3})
	s, err := datastore.Open(reldb.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range rep.ToPTdf("smg2000", "e", "") {
		if err := s.LoadRecord(rec); err != nil {
			t.Fatalf("record %d (%s): %v", i, ptdf.FormatRecord(rec), err)
		}
	}
	// Caller/callee filters find callsite results (no granularity loss).
	callers, err := s.ResourcesOfType("build/module/function")
	if err != nil || len(callers) == 0 {
		t.Fatalf("callers = %v, %v", callers, err)
	}
	fam := core.NewFamily(callers[0])
	n, err := s.CountFamilyMatches(fam)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("caller family matches no results")
	}
	callees, err := s.ResourcesOfType("environment/module/function")
	if err != nil || len(callees) == 0 {
		t.Fatalf("callees = %v, %v", callees, err)
	}
	n2, err := s.CountFamilyMatches(core.NewFamily(callees[0]))
	if err != nil || n2 == 0 {
		t.Errorf("callee family matches = %d, %v", n2, err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
