// Package datastore implements PTDataStore: the PerfTrack data store from
// Section 3 of the paper, mapping the core model onto the relational
// schema of Figure 1 and providing the load and query interfaces used by
// the script interface and the GUI.
//
// Schema notes (Figure 1):
//
//   - resource_item holds one row per resource with its name, parent link,
//     and focus_framework_id (the internal identifier of its type).
//   - focus_framework is the resource type registry; PerfTrack loads the
//     base types through the same type-extension interface users call.
//   - resource_attribute holds string attributes; resource_constraint
//     holds resource-valued attributes (two resource_item references).
//   - Each performance-result context is a "focus"; focus_has_resource
//     links a focus to its member resources, and performance results link
//     to one or more foci (multiple resource sets per result, added for
//     the mpiP caller/callee data in §4.2).
//   - resource_has_ancestor and resource_has_descendant are closure tables
//     added "for performance reasons" to avoid walking parent_id chains;
//     the store can run with or without them (§ablation).
package datastore

import (
	"fmt"
	"strings"

	"perftrack/internal/reldb"
	"perftrack/internal/sqldb"
)

// schemaDDL is the Figure 1 schema expressed in the sqldb SQL subset. The
// statements run in order; foreign keys require their referenced tables
// first.
var schemaDDL = []string{
	`CREATE TABLE application (
		id INTEGER PRIMARY KEY,
		name TEXT NOT NULL
	)`,
	`CREATE UNIQUE INDEX application_name ON application (name)`,

	`CREATE TABLE execution (
		id INTEGER PRIMARY KEY,
		name TEXT NOT NULL,
		application_id INTEGER NOT NULL,
		FOREIGN KEY (application_id) REFERENCES application (id)
	)`,
	`CREATE UNIQUE INDEX execution_name ON execution (name)`,
	`CREATE INDEX execution_app ON execution (application_id)`,

	`CREATE TABLE focus_framework (
		id INTEGER PRIMARY KEY,
		type_name TEXT NOT NULL,
		parent_id INTEGER,
		FOREIGN KEY (parent_id) REFERENCES focus_framework (id)
	)`,
	`CREATE UNIQUE INDEX focus_framework_name ON focus_framework (type_name)`,
	`CREATE INDEX focus_framework_parent ON focus_framework (parent_id)`,

	`CREATE TABLE resource_item (
		id INTEGER PRIMARY KEY,
		name TEXT NOT NULL,
		base_name TEXT NOT NULL,
		parent_id INTEGER,
		focus_framework_id INTEGER NOT NULL,
		execution_id INTEGER,
		FOREIGN KEY (parent_id) REFERENCES resource_item (id),
		FOREIGN KEY (focus_framework_id) REFERENCES focus_framework (id),
		FOREIGN KEY (execution_id) REFERENCES execution (id)
	)`,
	`CREATE UNIQUE INDEX resource_item_name ON resource_item (name)`,
	`CREATE INDEX resource_item_parent ON resource_item (parent_id)`,
	`CREATE INDEX resource_item_type ON resource_item (focus_framework_id)`,
	`CREATE INDEX resource_item_base ON resource_item (base_name)`,
	`CREATE INDEX resource_item_exec ON resource_item (execution_id)`,

	`CREATE TABLE resource_attribute (
		id INTEGER PRIMARY KEY,
		resource_id INTEGER NOT NULL,
		name TEXT NOT NULL,
		value TEXT NOT NULL,
		attr_type TEXT NOT NULL,
		FOREIGN KEY (resource_id) REFERENCES resource_item (id)
	)`,
	`CREATE INDEX resource_attribute_res ON resource_attribute (resource_id)`,
	`CREATE INDEX resource_attribute_name ON resource_attribute (name, value)`,

	`CREATE TABLE resource_constraint (
		id INTEGER PRIMARY KEY,
		resource_id_1 INTEGER NOT NULL,
		resource_id_2 INTEGER NOT NULL,
		FOREIGN KEY (resource_id_1) REFERENCES resource_item (id),
		FOREIGN KEY (resource_id_2) REFERENCES resource_item (id)
	)`,
	`CREATE INDEX resource_constraint_r1 ON resource_constraint (resource_id_1)`,
	`CREATE INDEX resource_constraint_r2 ON resource_constraint (resource_id_2)`,

	`CREATE TABLE resource_has_ancestor (
		resource_id INTEGER NOT NULL,
		ancestor_id INTEGER NOT NULL,
		PRIMARY KEY (resource_id, ancestor_id),
		FOREIGN KEY (resource_id) REFERENCES resource_item (id),
		FOREIGN KEY (ancestor_id) REFERENCES resource_item (id)
	)`,
	`CREATE INDEX rha_ancestor ON resource_has_ancestor (ancestor_id)`,

	`CREATE TABLE resource_has_descendant (
		resource_id INTEGER NOT NULL,
		descendant_id INTEGER NOT NULL,
		PRIMARY KEY (resource_id, descendant_id),
		FOREIGN KEY (resource_id) REFERENCES resource_item (id),
		FOREIGN KEY (descendant_id) REFERENCES resource_item (id)
	)`,
	`CREATE INDEX rhd_descendant ON resource_has_descendant (descendant_id)`,

	`CREATE TABLE metric (
		id INTEGER PRIMARY KEY,
		name TEXT NOT NULL
	)`,
	`CREATE UNIQUE INDEX metric_name ON metric (name)`,

	`CREATE TABLE performance_tool (
		id INTEGER PRIMARY KEY,
		name TEXT NOT NULL
	)`,
	`CREATE UNIQUE INDEX performance_tool_name ON performance_tool (name)`,

	`CREATE TABLE units (
		id INTEGER PRIMARY KEY,
		name TEXT NOT NULL
	)`,
	`CREATE UNIQUE INDEX units_name ON units (name)`,

	`CREATE TABLE focus (
		id INTEGER PRIMARY KEY,
		focus_type TEXT NOT NULL,
		signature TEXT NOT NULL
	)`,
	`CREATE UNIQUE INDEX focus_signature ON focus (signature)`,

	`CREATE TABLE focus_has_resource (
		focus_id INTEGER NOT NULL,
		resource_id INTEGER NOT NULL,
		PRIMARY KEY (focus_id, resource_id),
		FOREIGN KEY (focus_id) REFERENCES focus (id),
		FOREIGN KEY (resource_id) REFERENCES resource_item (id)
	)`,
	`CREATE INDEX fhr_resource ON focus_has_resource (resource_id)`,

	`CREATE TABLE performance_result (
		id INTEGER PRIMARY KEY,
		execution_id INTEGER NOT NULL,
		metric_id INTEGER NOT NULL,
		performance_tool_id INTEGER NOT NULL,
		units_id INTEGER NOT NULL,
		value REAL NOT NULL,
		FOREIGN KEY (execution_id) REFERENCES execution (id),
		FOREIGN KEY (metric_id) REFERENCES metric (id),
		FOREIGN KEY (performance_tool_id) REFERENCES performance_tool (id),
		FOREIGN KEY (units_id) REFERENCES units (id)
	)`,
	`CREATE INDEX performance_result_exec ON performance_result (execution_id)`,
	`CREATE INDEX performance_result_metric ON performance_result (metric_id)`,

	// Complex (histogram-valued) performance results — the paper's §6
	// future-work item: one row holds every bin of a Paradyn histogram,
	// instead of one performance_result per bin. The owning
	// performance_result row stores the summary scalar (mean over bins
	// with data).
	`CREATE TABLE result_histogram (
		result_id INTEGER PRIMARY KEY,
		bin_width REAL NOT NULL,
		num_bins INTEGER NOT NULL,
		bin_values TEXT NOT NULL,
		FOREIGN KEY (result_id) REFERENCES performance_result (id)
	)`,

	`CREATE TABLE result_has_focus (
		result_id INTEGER NOT NULL,
		focus_id INTEGER NOT NULL,
		PRIMARY KEY (result_id, focus_id),
		FOREIGN KEY (result_id) REFERENCES performance_result (id),
		FOREIGN KEY (focus_id) REFERENCES focus (id)
	)`,
	`CREATE INDEX rhf_focus ON result_has_focus (focus_id)`,

	// Planner statistics: advisory row counts, distinct-value estimates,
	// and segment-resident row coverage, refreshed at batch-commit time.
	// kind is "table" or "attribute"; a restarted store warm-starts its
	// cost model from these rows before the first commit rebuilds them.
	`CREATE TABLE table_statistics (
		id INTEGER PRIMARY KEY,
		kind TEXT NOT NULL,
		name TEXT NOT NULL,
		row_count INTEGER NOT NULL,
		distinct_count INTEGER NOT NULL,
		segment_rows INTEGER NOT NULL,
		generation INTEGER NOT NULL
	)`,
	`CREATE INDEX table_statistics_name ON table_statistics (kind, name)`,
}

// tableNames lists every schema table, used for existence checks and
// statistics.
var tableNames = []string{
	"application", "execution", "focus_framework", "resource_item",
	"resource_attribute", "resource_constraint", "resource_has_ancestor",
	"resource_has_descendant", "metric", "performance_tool", "units",
	"focus", "focus_has_resource", "performance_result",
	"result_histogram", "result_has_focus", "table_statistics",
}

// createSchema creates the Figure 1 schema through the SQL layer.
func createSchema(sql *sqldb.DB) error {
	for _, ddl := range schemaDDL {
		if _, err := sql.Exec(ddl); err != nil {
			return fmt.Errorf("datastore: schema: %w", err)
		}
	}
	return nil
}

// migrateSchema creates any tables and indexes added to the schema after
// an existing store was initialized, so stores survive upgrades of this
// package. Indexes missing from an existing table (e.g. the
// resource_attribute (name, value) index the pr-filter fast path scans)
// are created through the engine, which backfills them from the table's
// current rows.
func migrateSchema(sql *sqldb.DB, eng reldb.Engine) error {
	for _, ddl := range schemaDDL {
		trimmed := strings.TrimSpace(ddl)
		switch {
		case strings.HasPrefix(trimmed, "CREATE TABLE "):
			name := strings.Fields(strings.TrimPrefix(trimmed, "CREATE TABLE "))[0]
			if _, exists := eng.Table(name); exists {
				continue
			}
			if _, err := sql.Exec(ddl); err != nil {
				return fmt.Errorf("datastore: migrate %s: %w", name, err)
			}
		case strings.Contains(trimmed, "INDEX"):
			idxName, tblName, err := parseIndexDDL(trimmed)
			if err != nil {
				return err
			}
			tab, exists := eng.Table(tblName)
			if !exists || tab.HasIndex(idxName) {
				continue
			}
			if _, err := sql.Exec(ddl); err != nil {
				return fmt.Errorf("datastore: migrate index %s: %w", idxName, err)
			}
		}
	}
	return nil
}

// parseIndexDDL extracts the index and table names from a
// CREATE [UNIQUE] INDEX statement of the schema DDL.
func parseIndexDDL(ddl string) (index, table string, err error) {
	fields := strings.Fields(ddl)
	for i, f := range fields {
		if f == "INDEX" && i+1 < len(fields) {
			index = fields[i+1]
		}
		if f == "ON" && i+1 < len(fields) {
			table = fields[i+1]
		}
	}
	if index == "" || table == "" {
		return "", "", fmt.Errorf("datastore: malformed index DDL %q", ddl)
	}
	return index, table, nil
}

// schemaExists reports whether the schema is already present.
func schemaExists(eng reldb.Engine) bool {
	_, ok := eng.Table("resource_item")
	return ok
}

// SchemaDDL renders the live schema of every table as CREATE statements —
// the reproduction of Figure 1.
func (s *Store) SchemaDDL() string {
	out := ""
	for _, name := range tableNames {
		if t, ok := s.eng.Table(name); ok {
			out += t.Schema().DDL() + "\n"
		}
	}
	return out
}
