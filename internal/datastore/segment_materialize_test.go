package datastore

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"perftrack/internal/core"
	"perftrack/internal/reldb"
)

// newSegmentStore opens a store on a fresh segment engine with an
// aggressive flush threshold so the background compactor engages at
// test scale.
func newSegmentStore(t *testing.T) (*Store, *reldb.FileEngine) {
	t.Helper()
	eng, err := reldb.Open(reldb.KindSegment, t.TempDir())
	if err != nil {
		t.Fatalf("Open segment engine: %v", err)
	}
	fe := eng.(*reldb.FileEngine)
	fe.SetSegmentFlushRows(256)
	t.Cleanup(func() { fe.Close() })
	s, err := Open(eng)
	if err != nil {
		t.Fatalf("Open store: %v", err)
	}
	return s, fe
}

// seedSegmentStudy registers the shared resources and executions used
// by the segment equivalence tests.
func seedSegmentStudy(t *testing.T, s *Store) {
	t.Helper()
	s.AddResource("/irs", "application", "")
	for n := 0; n < 4; n++ {
		name := core.ResourceName(fmt.Sprintf("/GM/MCR/batch/n%d/p0", n))
		if _, err := s.AddResource(name, "grid/machine/partition/node/processor", ""); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.AddExecution("m-mcr", "irs"); err != nil {
		t.Fatal(err)
	}
}

// addSegResult stores one deterministic result with one or two contexts.
func addSegResult(t testing.TB, s *Store, i int) int64 {
	node := core.ResourceName(fmt.Sprintf("/GM/MCR/batch/n%d/p0", i%4))
	ctxs := []core.Context{core.NewContext("/irs", node)}
	if i%3 == 0 {
		other := core.ResourceName(fmt.Sprintf("/GM/MCR/batch/n%d/p0", (i+1)%4))
		ctxs = append(ctxs, core.Context{Type: core.FocusSender, Resources: []core.ResourceName{other}})
	}
	id, err := s.AddPerfResult(&core.PerformanceResult{
		Execution: "m-mcr", Metric: fmt.Sprintf("metric-%d", i%16), Value: float64(i) * 0.5,
		Units: "seconds", Tool: "test", Contexts: ctxs,
	})
	if err != nil {
		t.Fatalf("AddPerfResult %d: %v", i, err)
	}
	return id
}

// TestMaterializeSegmentEquivalence compares the columnar scan path
// against both the B-tree batch path and the per-ID reference on a
// compacted segment store, including the mixed segment+tail case.
func TestMaterializeSegmentEquivalence(t *testing.T) {
	s, fe := newSegmentStore(t)
	seedSegmentStudy(t, s)
	ids := make([]int64, 0, 600)
	for i := 0; i < 600; i++ {
		ids = append(ids, addSegResult(t, s, i))
	}
	if err := fe.CompactSegments(); err != nil {
		t.Fatal(err)
	}
	// Rows inserted after the compaction stay in the unflushed tail.
	for i := 600; i < 650; i++ {
		ids = append(ids, addSegResult(t, s, i))
	}
	before := s.Telemetry().SegmentScans
	got, err := s.MaterializeResults(ids)
	if err != nil {
		t.Fatal(err)
	}
	if s.Telemetry().SegmentScans == before {
		t.Fatal("segment scan path not taken on a compacted store")
	}
	want, err := s.MaterializeResultsOpts(ids, MaterializeOptions{NoSegments: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("result %d differs:\n got  %+v\n want %+v", i, got[i], want[i])
			}
		}
	}
	ref := perIDResults(t, s, ids[:50])
	if !reflect.DeepEqual(got[:50], ref) {
		t.Fatal("segment path differs from per-ID reference")
	}
}

// TestMaterializeSegmentEquivalenceConcurrentLoad runs the comparison
// while a writer goroutine bulk-loads new results and compactions race
// the reads: rows already materialized are immutable under the
// append-only workload, so both paths must agree on every round.
func TestMaterializeSegmentEquivalenceConcurrentLoad(t *testing.T) {
	s, fe := newSegmentStore(t)
	seedSegmentStudy(t, s)
	ids := make([]int64, 0, 400)
	for i := 0; i < 400; i++ {
		ids = append(ids, addSegResult(t, s, i))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 400; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			node := core.ResourceName(fmt.Sprintf("/GM/MCR/batch/n%d/p0", i%4))
			if _, err := s.AddPerfResult(&core.PerformanceResult{
				Execution: "m-mcr", Metric: fmt.Sprintf("metric-%d", i%16), Value: float64(i) * 0.5,
				Units: "seconds", Tool: "test",
				Contexts: []core.Context{core.NewContext("/irs", node)},
			}); err != nil {
				t.Errorf("concurrent AddPerfResult %d: %v", i, err)
				return
			}
		}
	}()
	for round := 0; round < 15; round++ {
		if round%5 == 2 {
			if err := fe.CompactSegments(); err != nil {
				t.Error(err)
				break
			}
		}
		seg, err := s.MaterializeResults(ids)
		if err != nil {
			t.Errorf("round %d: %v", round, err)
			break
		}
		btree, err := s.MaterializeResultsOpts(ids, MaterializeOptions{NoSegments: true})
		if err != nil {
			t.Errorf("round %d: %v", round, err)
			break
		}
		if !reflect.DeepEqual(seg, btree) {
			for i := range btree {
				if !reflect.DeepEqual(seg[i], btree[i]) {
					t.Errorf("round %d: result %d differs:\n got  %+v\n want %+v", round, i, seg[i], btree[i])
					break
				}
			}
			break
		}
	}
	close(stop)
	wg.Wait()
}
