package datastore

import "errors"

// Sentinel errors classifying every failure the store can report. Callers
// branch on them with errors.Is; the service layer maps them onto HTTP
// status codes (404, 409, 400) so clients never parse error strings.
var (
	// ErrNotFound reports a lookup of an entity — execution, resource,
	// type, result — that does not exist in the store.
	ErrNotFound = errors.New("not found")

	// ErrExists reports an attempt to redefine an existing entity with
	// conflicting identity, e.g. re-declaring an execution under a
	// different application. Idempotent re-adds (same identity) are not
	// errors.
	ErrExists = errors.New("conflicts with existing entity")

	// ErrBadSpec reports malformed input: an unparsable PTdf record, an
	// empty name, an invalid filter spec, or a structurally invalid
	// performance result.
	ErrBadSpec = errors.New("bad specification")
)
