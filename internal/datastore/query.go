package datastore

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"

	"perftrack/internal/core"
	"perftrack/internal/obs"
	"perftrack/internal/reldb"
)

// ResourceByName fetches a resource with its attributes and constraints.
func (s *Store) ResourceByName(name core.ResourceName) (*core.Resource, error) {
	s.mu.Lock()
	id, ok := s.resIDs[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("datastore: no resource %q: %w", name, ErrNotFound)
	}
	return s.resourceByID(id)
}

func (s *Store) resourceByID(id int64) (*core.Resource, error) {
	riTab, _ := s.eng.Table("resource_item")
	row, ok := riTab.Get(id)
	if !ok {
		return nil, fmt.Errorf("datastore: no resource id %d: %w", id, ErrNotFound)
	}
	name := core.ResourceName(row[1].Text())
	typ, err := s.typeOfID(row[4].Int64())
	if err != nil {
		return nil, err
	}
	res := core.NewResource(name, typ)
	raTab, _ := s.eng.Table("resource_attribute")
	if err := raTab.IndexScan("resource_attribute_res", []reldb.Value{reldb.Int(id)},
		func(_ int64, arow reldb.Row) bool {
			res.SetAttribute(arow[2].Text(), arow[3].Text())
			return true
		}); err != nil {
		return nil, err
	}
	// Collect constraint partner IDs inside the scan and resolve names
	// after it returns: taking s.mu inside an engine scan callback would
	// invert the store → engine lock order and deadlock against writers.
	rcTab, _ := s.eng.Table("resource_constraint")
	var partnerIDs []int64
	if err := rcTab.IndexScan("resource_constraint_r1", []reldb.Value{reldb.Int(id)},
		func(_ int64, crow reldb.Row) bool {
			partnerIDs = append(partnerIDs, crow[2].Int64())
			return true
		}); err != nil {
		return nil, err
	}
	s.mu.Lock()
	for _, pid := range partnerIDs {
		res.AddConstraint(s.resNames[pid])
	}
	s.mu.Unlock()
	return res, nil
}

func (s *Store) typeOfID(ffid int64) (core.TypePath, error) {
	ffTab, _ := s.eng.Table("focus_framework")
	row, ok := ffTab.Get(ffid)
	if !ok {
		return "", fmt.Errorf("datastore: no type id %d", ffid)
	}
	return core.TypePath(row[1].Text()), nil
}

// TypeOfResource returns the type of an existing resource without
// materializing its attributes.
func (s *Store) TypeOfResource(name core.ResourceName) (core.TypePath, error) {
	s.mu.Lock()
	id, ok := s.resIDs[name]
	s.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("datastore: no resource %q: %w", name, ErrNotFound)
	}
	riTab, _ := s.eng.Table("resource_item")
	row, ok := riTab.Get(id)
	if !ok {
		return "", fmt.Errorf("datastore: no resource id %d: %w", id, ErrNotFound)
	}
	return s.typeOfID(row[4].Int64())
}

// HasResource reports whether the full resource name exists.
func (s *Store) HasResource(name core.ResourceName) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.resIDs[name]
	return ok
}

// ResourcesOfType lists resources with exactly the given type, sorted.
func (s *Store) ResourcesOfType(t core.TypePath) ([]core.ResourceName, error) {
	s.mu.Lock()
	ffid, ok := s.typeIDs[t]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("datastore: unknown type %q: %w", t, ErrNotFound)
	}
	riTab, _ := s.eng.Table("resource_item")
	var out []core.ResourceName
	if err := riTab.IndexScan("resource_item_type", []reldb.Value{reldb.Int(ffid)},
		func(_ int64, row reldb.Row) bool {
			out = append(out, core.ResourceName(row[1].Text()))
			return true
		}); err != nil {
		return nil, err
	}
	sortNames(out)
	return out, nil
}

// ResourcesWithBaseName lists resources whose final component is base.
func (s *Store) ResourcesWithBaseName(base string) ([]core.ResourceName, error) {
	riTab, _ := s.eng.Table("resource_item")
	var out []core.ResourceName
	if err := riTab.IndexScan("resource_item_base", []reldb.Value{reldb.Str(base)},
		func(_ int64, row reldb.Row) bool {
			out = append(out, core.ResourceName(row[1].Text()))
			return true
		}); err != nil {
		return nil, err
	}
	sortNames(out)
	return out, nil
}

// Children lists the direct child resources of a name, sorted. The GUI
// fetches children lazily when the user expands a resource.
func (s *Store) Children(name core.ResourceName) ([]core.ResourceName, error) {
	s.mu.Lock()
	id, ok := s.resIDs[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("datastore: no resource %q: %w", name, ErrNotFound)
	}
	riTab, _ := s.eng.Table("resource_item")
	var out []core.ResourceName
	if err := riTab.IndexScan("resource_item_parent", []reldb.Value{reldb.Int(id)},
		func(_ int64, row reldb.Row) bool {
			out = append(out, core.ResourceName(row[1].Text()))
			return true
		}); err != nil {
		return nil, err
	}
	sortNames(out)
	return out, nil
}

// Ancestors returns all proper ancestors of a resource. With closure
// tables enabled this reads resource_has_ancestor; otherwise it walks
// parent_id links (the paper notes the tables exist to avoid that walk).
func (s *Store) Ancestors(name core.ResourceName) ([]core.ResourceName, error) {
	s.mu.Lock()
	id, ok := s.resIDs[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("datastore: no resource %q: %w", name, ErrNotFound)
	}
	var out []core.ResourceName
	if s.UseClosureTables {
		rhaTab, _ := s.eng.Table("resource_has_ancestor")
		var ancIDs []int64
		if err := rhaTab.PKScan([]reldb.Value{reldb.Int(id)},
			func(_ int64, row reldb.Row) bool {
				ancIDs = append(ancIDs, row[1].Int64())
				return true
			}); err != nil {
			return nil, err
		}
		out = s.namesOfIDs(ancIDs)
	} else {
		riTab, _ := s.eng.Table("resource_item")
		cur := id
		for {
			row, ok := riTab.Get(cur)
			if !ok || row[3].IsNull() {
				break
			}
			cur = row[3].Int64()
			prow, ok := riTab.Get(cur)
			if !ok {
				break
			}
			out = append(out, core.ResourceName(prow[1].Text()))
		}
	}
	sortNames(out)
	return out, nil
}

// Descendants returns all proper descendants of a resource.
func (s *Store) Descendants(name core.ResourceName) ([]core.ResourceName, error) {
	s.mu.Lock()
	id, ok := s.resIDs[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("datastore: no resource %q: %w", name, ErrNotFound)
	}
	var out []core.ResourceName
	if s.UseClosureTables {
		rhdTab, _ := s.eng.Table("resource_has_descendant")
		var descIDs []int64
		if err := rhdTab.PKScan([]reldb.Value{reldb.Int(id)},
			func(_ int64, row reldb.Row) bool {
				descIDs = append(descIDs, row[1].Int64())
				return true
			}); err != nil {
			return nil, err
		}
		out = s.namesOfIDs(descIDs)
	} else {
		// Breadth-first walk over parent links.
		riTab, _ := s.eng.Table("resource_item")
		queue := []int64{id}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			if err := riTab.IndexScan("resource_item_parent", []reldb.Value{reldb.Int(cur)},
				func(cid int64, row reldb.Row) bool {
					out = append(out, core.ResourceName(row[1].Text()))
					queue = append(queue, cid)
					return true
				}); err != nil {
				return nil, err
			}
		}
	}
	sortNames(out)
	return out, nil
}

func sortNames(ns []core.ResourceName) {
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
}

// namesOfIDs maps resource IDs to names under s.mu, outside any engine
// lock (lock order is always store → engine, never the reverse).
func (s *Store) namesOfIDs(ids []int64) []core.ResourceName {
	if len(ids) == 0 {
		return nil
	}
	out := make([]core.ResourceName, 0, len(ids))
	s.mu.Lock()
	for _, id := range ids {
		out = append(out, s.resNames[id])
	}
	s.mu.Unlock()
	return out
}

// ApplyFilter evaluates a resource filter over the store, returning the
// resulting resource family (relatives included per the filter's flag).
// Attribute predicates are answered from the resource_attribute
// (name, value) index — one index scan per predicate, intersected
// smallest-first — instead of materializing every candidate resource.
func (s *Store) ApplyFilter(rf core.ResourceFilter) (core.Family, error) {
	return s.ApplyFilterCtx(context.Background(), rf)
}

// ApplyFilterCtx is ApplyFilter under a context: when a trace rides
// ctx, evaluation records a datastore.filter span annotated with the
// resulting family size.
func (s *Store) ApplyFilterCtx(ctx context.Context, rf core.ResourceFilter) (core.Family, error) {
	_, span := obs.StartSpan(ctx, "datastore.filter")
	fam, err := s.applyFilter(rf)
	if err == nil {
		span.Annotate("members", strconv.Itoa(fam.Size()))
	}
	span.End()
	return fam, err
}

func (s *Store) applyFilter(rf core.ResourceFilter) (core.Family, error) {
	fam := core.NewFamily()
	var matched []core.ResourceName
	selected := true // a name/base/type selection mode is set
	switch {
	case rf.Name != "":
		if s.HasResource(rf.Name) {
			matched = append(matched, rf.Name)
		}
	case rf.BaseName != "":
		ms, err := s.ResourcesWithBaseName(rf.BaseName)
		if err != nil {
			return fam, err
		}
		matched = ms
	case rf.Type != "":
		ms, err := s.ResourcesOfType(rf.Type)
		if err != nil {
			return fam, err
		}
		matched = ms
	default:
		selected = false
	}
	switch {
	case len(rf.Attrs) > 0:
		ids, err := s.attrFilterIDs(rf.Attrs)
		if err != nil {
			return fam, err
		}
		if selected {
			// Narrow the selected names by the attribute ID-set.
			s.mu.Lock()
			sel := make([]int64, 0, len(matched))
			for _, name := range matched {
				if id, ok := s.resIDs[name]; ok {
					sel = append(sel, id)
				}
			}
			s.mu.Unlock()
			ids = sortDedup(sel).intersect(ids)
		}
		matched = matched[:0]
		s.mu.Lock()
		for _, id := range ids {
			if n, ok := s.resNames[id]; ok {
				matched = append(matched, n)
			}
		}
		s.mu.Unlock()
		sortNames(matched)
	case !selected:
		// No selection criteria at all: every resource matches.
		riTab, _ := s.eng.Table("resource_item")
		riTab.Scan(func(_ int64, row reldb.Row) bool {
			matched = append(matched, core.ResourceName(row[1].Text()))
			return true
		})
	}
	for _, m := range matched {
		fam.Add(m)
	}
	wantAnc := rf.Include == core.IncludeAncestors || rf.Include == core.IncludeBoth
	wantDesc := rf.Include == core.IncludeDescendants || rf.Include == core.IncludeBoth
	for _, m := range matched {
		if wantAnc {
			anc, err := s.Ancestors(m)
			if err != nil {
				return fam, err
			}
			for _, a := range anc {
				fam.Add(a)
			}
		}
		if wantDesc {
			desc, err := s.Descendants(m)
			if err != nil {
				return fam, err
			}
			for _, d := range desc {
				fam.Add(d)
			}
		}
	}
	return fam, nil
}

// attrMatchIDs returns the sorted IDs of resources whose effective value
// for the predicate's attribute satisfies it, from one scan of the
// resource_attribute (name, value) index. When an attribute was set more
// than once, the highest-rowid row wins — the same last-write-wins rule
// resource materialization applies.
func (s *Store) attrMatchIDs(p core.AttrPredicate) (idSet, error) {
	raTab, ok := s.eng.Table("resource_attribute")
	if !ok {
		return nil, fmt.Errorf("datastore: no resource_attribute table")
	}
	type cur struct {
		rowID int64
		value string
	}
	latest := make(map[int64]cur)
	if err := raTab.IndexScan("resource_attribute_name", []reldb.Value{reldb.Str(p.Attr)},
		func(id int64, row reldb.Row) bool {
			rid := row[1].Int64()
			if c, ok := latest[rid]; !ok || id > c.rowID {
				latest[rid] = cur{id, row[3].Text()}
			}
			return true
		}); err != nil {
		return nil, err
	}
	ids := make([]int64, 0, len(latest))
	for rid, c := range latest {
		if p.Eval(c.value) {
			ids = append(ids, rid)
		}
	}
	return sortDedup(ids), nil
}

// attrFilterIDs evaluates a conjunction of attribute predicates through
// the attribute index, intersecting the per-predicate candidate sets
// smallest-first.
func (s *Store) attrFilterIDs(preds []core.AttrPredicate) (idSet, error) {
	sets := make([]idSet, len(preds))
	for i, p := range preds {
		ids, err := s.attrMatchIDs(p)
		if err != nil {
			return nil, err
		}
		sets[i] = ids
	}
	return intersectAll(sets), nil
}

// familyResultIDs returns the sorted set of performance-result IDs whose
// contexts touch any member of the family. Results are cached per store
// generation under the family's canonical signature, so the GUI's
// per-family live counts cost one map lookup between writes.
func (s *Store) familyResultIDs(ctx context.Context, fam core.Family) (idSet, error) {
	gen := s.gen.Load()
	key := "fam:" + fam.Signature()
	_, span := obs.StartSpan(ctx, "datastore.family")
	defer span.End()
	if ids, ok := s.cache.get(gen, key); ok {
		span.Annotate("cache", "hit")
		return ids, nil
	}
	span.Annotate("cache", "miss")
	fhrTab, _ := s.eng.Table("focus_has_resource")
	rhfTab, _ := s.eng.Table("result_has_focus")
	s.mu.Lock()
	memberIDs := make([]int64, 0, fam.Size())
	for _, name := range fam.Members() {
		if id, ok := s.resIDs[name]; ok {
			memberIDs = append(memberIDs, id)
		}
	}
	s.mu.Unlock()
	var focusIDs []int64
	for _, rid := range memberIDs {
		if err := fhrTab.IndexScan("fhr_resource", []reldb.Value{reldb.Int(rid)},
			func(_ int64, row reldb.Row) bool {
				focusIDs = append(focusIDs, row[0].Int64())
				return true
			}); err != nil {
			return nil, err
		}
	}
	var results []int64
	for _, fid := range sortDedup(focusIDs) {
		if err := rhfTab.IndexScan("rhf_focus", []reldb.Value{reldb.Int(fid)},
			func(_ int64, row reldb.Row) bool {
				results = append(results, row[0].Int64())
				return true
			}); err != nil {
			return nil, err
		}
	}
	ids := sortDedup(results)
	s.cache.put(gen, key, ids)
	return ids, nil
}

// familySets evaluates every family's result-ID set, fanning out over a
// bounded worker pool when more than one family (and CPU) is available.
// The engine takes a reader lock per scan, so independent families read
// concurrently without blocking each other.
func (s *Store) familySets(ctx context.Context, fams []core.Family) ([]idSet, error) {
	sets := make([]idSet, len(fams))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(fams) {
		workers = len(fams)
	}
	if workers <= 1 {
		for i, fam := range fams {
			ids, err := s.familyResultIDs(ctx, fam)
			if err != nil {
				return nil, err
			}
			sets[i] = ids
		}
		return sets, nil
	}
	errs := make([]error, len(fams))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				sets[i], errs[i] = s.familyResultIDs(ctx, fams[i])
			}
		}()
	}
	for i := range fams {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return sets, nil
}

// matchingIDs evaluates a pr-filter to its sorted result ID-set. The
// returned set may be shared with the cache; callers must not modify it.
// When a trace rides ctx it records a datastore.prfilter span annotated
// with the match-cache outcome.
func (s *Store) matchingIDs(ctx context.Context, prf core.PRFilter) (idSet, error) {
	if len(prf.Families) == 0 {
		prTab, _ := s.eng.Table("performance_result")
		var all []int64
		prTab.Scan(func(id int64, _ reldb.Row) bool {
			all = append(all, id)
			return true
		})
		return sortDedup(all), nil
	}
	gen := s.gen.Load()
	key := "prf:" + prf.Signature()
	ctx, span := obs.StartSpan(ctx, "datastore.prfilter")
	defer span.End()
	if ids, ok := s.cache.get(gen, key); ok {
		span.Annotate("cache", "hit")
		return ids, nil
	}
	span.Annotate("cache", "miss")
	sets, err := s.familySets(ctx, prf.Families)
	if err != nil {
		return nil, err
	}
	ids := intersectAll(sets)
	s.cache.put(gen, key, ids)
	return ids, nil
}

// MatchingResultIDs evaluates a pr-filter: the IDs of performance results
// whose contexts contain at least one resource from every family, sorted
// ascending. The returned slice is the caller's to modify.
func (s *Store) MatchingResultIDs(prf core.PRFilter) ([]int64, error) {
	return s.MatchingResultIDsCtx(context.Background(), prf)
}

// MatchingResultIDsCtx is MatchingResultIDs under a context.
func (s *Store) MatchingResultIDsCtx(ctx context.Context, prf core.PRFilter) ([]int64, error) {
	ids, err := s.matchingIDs(ctx, prf)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(ids))
	copy(out, ids)
	return out, nil
}

// CountMatches reports how many performance results a pr-filter selects —
// the GUI's live match count. It counts through the set layer without
// materializing or copying the ID slice; with a warm cache it is one map
// lookup.
func (s *Store) CountMatches(prf core.PRFilter) (int, error) {
	return s.CountMatchesCtx(context.Background(), prf)
}

// CountMatchesCtx is CountMatches under a context.
func (s *Store) CountMatchesCtx(ctx context.Context, prf core.PRFilter) (int, error) {
	if len(prf.Families) == 0 {
		prTab, _ := s.eng.Table("performance_result")
		return prTab.Len(), nil
	}
	ids, err := s.matchingIDs(ctx, prf)
	if err != nil {
		return 0, err
	}
	return len(ids), nil
}

// CountFamilyMatches reports how many results one family alone selects —
// the GUI's per-family count.
func (s *Store) CountFamilyMatches(fam core.Family) (int, error) {
	return s.CountFamilyMatchesCtx(context.Background(), fam)
}

// CountFamilyMatchesCtx is CountFamilyMatches under a context.
func (s *Store) CountFamilyMatchesCtx(ctx context.Context, fam core.Family) (int, error) {
	ids, err := s.familyResultIDs(ctx, fam)
	if err != nil {
		return 0, err
	}
	return len(ids), nil
}

// ResultByID materializes a performance result with its contexts.
func (s *Store) ResultByID(id int64) (*core.PerformanceResult, error) {
	prTab, _ := s.eng.Table("performance_result")
	row, ok := prTab.Get(id)
	if !ok {
		return nil, fmt.Errorf("datastore: no performance result %d: %w", id, ErrNotFound)
	}
	pr := &core.PerformanceResult{Value: row[5].Float64()}
	var err error
	if pr.Execution, err = s.nameOf("execution", row[1].Int64()); err != nil {
		return nil, err
	}
	if pr.Metric, err = s.nameOf("metric", row[2].Int64()); err != nil {
		return nil, err
	}
	if pr.Tool, err = s.nameOf("performance_tool", row[3].Int64()); err != nil {
		return nil, err
	}
	if pr.Units, err = s.nameOf("units", row[4].Int64()); err != nil {
		return nil, err
	}
	// Contexts: result -> foci -> resources, via PK-prefix scans on the
	// composite-keyed link tables. Each scan only collects IDs: nesting an
	// engine call (or s.mu) inside a scan callback would recursively RLock
	// the engine, which deadlocks when a writer is waiting in between.
	rhfTab, _ := s.eng.Table("result_has_focus")
	fTab, _ := s.eng.Table("focus")
	fhrTab, _ := s.eng.Table("focus_has_resource")
	var focusIDs []int64
	if err := rhfTab.PKScan([]reldb.Value{reldb.Int(id)}, func(_ int64, link reldb.Row) bool {
		focusIDs = append(focusIDs, link[1].Int64())
		return true
	}); err != nil {
		return nil, err
	}
	for _, fid := range focusIDs {
		frow, ok := fTab.Get(fid)
		if !ok {
			return nil, fmt.Errorf("datastore: missing focus %d", fid)
		}
		ft, err := core.ParseFocusType(frow[1].Text())
		if err != nil {
			return nil, err
		}
		var resIDs []int64
		if err := fhrTab.PKScan([]reldb.Value{reldb.Int(fid)}, func(_ int64, fr reldb.Row) bool {
			resIDs = append(resIDs, fr[1].Int64())
			return true
		}); err != nil {
			return nil, err
		}
		pr.Contexts = append(pr.Contexts, core.Context{Type: ft, Resources: s.namesOfIDs(resIDs)})
	}
	return pr, nil
}

func (s *Store) nameOf(table string, id int64) (string, error) {
	t, _ := s.eng.Table(table)
	row, ok := t.Get(id)
	if !ok {
		return "", fmt.Errorf("datastore: no %s id %d", table, id)
	}
	return row[1].Text(), nil
}

// ResultsOfExecution materializes every performance result of one
// execution via the execution index.
func (s *Store) ResultsOfExecution(exec string) ([]*core.PerformanceResult, error) {
	return s.ResultsOfExecutionCtx(context.Background(), exec)
}

// ResultsOfExecutionCtx is ResultsOfExecution under a context.
func (s *Store) ResultsOfExecutionCtx(ctx context.Context, exec string) ([]*core.PerformanceResult, error) {
	s.mu.Lock()
	execID, ok := s.execIDs[exec]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("datastore: unknown execution %q: %w", exec, ErrNotFound)
	}
	prTab, _ := s.eng.Table("performance_result")
	var ids []int64
	if err := prTab.IndexScan("performance_result_exec", []reldb.Value{reldb.Int(execID)},
		func(id int64, _ reldb.Row) bool {
			ids = append(ids, id)
			return true
		}); err != nil {
		return nil, err
	}
	return s.MaterializeResultsCtx(ctx, ids)
}

// QueryResults evaluates a pr-filter and materializes the matching
// results through the batch path.
func (s *Store) QueryResults(prf core.PRFilter) ([]*core.PerformanceResult, error) {
	return s.QueryResultsCtx(context.Background(), prf)
}

// QueryResultsCtx is QueryResults under a context.
func (s *Store) QueryResultsCtx(ctx context.Context, prf core.PRFilter) ([]*core.PerformanceResult, error) {
	ids, err := s.MatchingResultIDsCtx(ctx, prf)
	if err != nil {
		return nil, err
	}
	return s.MaterializeResultsCtx(ctx, ids)
}

// Applications lists application names, sorted.
func (s *Store) Applications() ([]string, error) { return s.sortedNames("application") }

// Executions lists execution names, sorted.
func (s *Store) Executions() ([]string, error) { return s.sortedNames("execution") }

// Metrics lists metric names, sorted.
func (s *Store) Metrics() ([]string, error) { return s.sortedNames("metric") }

// Tools lists performance tool names, sorted.
func (s *Store) Tools() ([]string, error) { return s.sortedNames("performance_tool") }

func (s *Store) sortedNames(table string) ([]string, error) {
	t, ok := s.eng.Table(table)
	if !ok {
		// A dictionary table missing from a migrated store is real
		// corruption; surfacing it beats returning an empty listing.
		return nil, fmt.Errorf("datastore: no %s table: %w", table, ErrNotFound)
	}
	var out []string
	t.Scan(func(_ int64, row reldb.Row) bool {
		out = append(out, row[1].Text())
		return true
	})
	sort.Strings(out)
	return out, nil
}
