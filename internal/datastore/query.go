package datastore

import (
	"fmt"
	"sort"

	"perftrack/internal/core"
	"perftrack/internal/reldb"
)

// ResourceByName fetches a resource with its attributes and constraints.
func (s *Store) ResourceByName(name core.ResourceName) (*core.Resource, error) {
	s.mu.Lock()
	id, ok := s.resIDs[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("datastore: no resource %q", name)
	}
	return s.resourceByID(id)
}

func (s *Store) resourceByID(id int64) (*core.Resource, error) {
	riTab, _ := s.eng.Table("resource_item")
	row, ok := riTab.Get(id)
	if !ok {
		return nil, fmt.Errorf("datastore: no resource id %d", id)
	}
	name := core.ResourceName(row[1].Text())
	typ, err := s.typeOfID(row[4].Int64())
	if err != nil {
		return nil, err
	}
	res := core.NewResource(name, typ)
	raTab, _ := s.eng.Table("resource_attribute")
	if err := raTab.IndexScan("resource_attribute_res", []reldb.Value{reldb.Int(id)},
		func(_ int64, arow reldb.Row) bool {
			res.SetAttribute(arow[2].Text(), arow[3].Text())
			return true
		}); err != nil {
		return nil, err
	}
	rcTab, _ := s.eng.Table("resource_constraint")
	if err := rcTab.IndexScan("resource_constraint_r1", []reldb.Value{reldb.Int(id)},
		func(_ int64, crow reldb.Row) bool {
			s.mu.Lock()
			other := s.resNames[crow[2].Int64()]
			s.mu.Unlock()
			res.AddConstraint(other)
			return true
		}); err != nil {
		return nil, err
	}
	return res, nil
}

func (s *Store) typeOfID(ffid int64) (core.TypePath, error) {
	ffTab, _ := s.eng.Table("focus_framework")
	row, ok := ffTab.Get(ffid)
	if !ok {
		return "", fmt.Errorf("datastore: no type id %d", ffid)
	}
	return core.TypePath(row[1].Text()), nil
}

// TypeOfResource returns the type of an existing resource without
// materializing its attributes.
func (s *Store) TypeOfResource(name core.ResourceName) (core.TypePath, error) {
	s.mu.Lock()
	id, ok := s.resIDs[name]
	s.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("datastore: no resource %q", name)
	}
	riTab, _ := s.eng.Table("resource_item")
	row, ok := riTab.Get(id)
	if !ok {
		return "", fmt.Errorf("datastore: no resource id %d", id)
	}
	return s.typeOfID(row[4].Int64())
}

// HasResource reports whether the full resource name exists.
func (s *Store) HasResource(name core.ResourceName) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.resIDs[name]
	return ok
}

// ResourcesOfType lists resources with exactly the given type, sorted.
func (s *Store) ResourcesOfType(t core.TypePath) ([]core.ResourceName, error) {
	s.mu.Lock()
	ffid, ok := s.typeIDs[t]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("datastore: unknown type %q", t)
	}
	riTab, _ := s.eng.Table("resource_item")
	var out []core.ResourceName
	if err := riTab.IndexScan("resource_item_type", []reldb.Value{reldb.Int(ffid)},
		func(_ int64, row reldb.Row) bool {
			out = append(out, core.ResourceName(row[1].Text()))
			return true
		}); err != nil {
		return nil, err
	}
	sortNames(out)
	return out, nil
}

// ResourcesWithBaseName lists resources whose final component is base.
func (s *Store) ResourcesWithBaseName(base string) ([]core.ResourceName, error) {
	riTab, _ := s.eng.Table("resource_item")
	var out []core.ResourceName
	if err := riTab.IndexScan("resource_item_base", []reldb.Value{reldb.Str(base)},
		func(_ int64, row reldb.Row) bool {
			out = append(out, core.ResourceName(row[1].Text()))
			return true
		}); err != nil {
		return nil, err
	}
	sortNames(out)
	return out, nil
}

// Children lists the direct child resources of a name, sorted. The GUI
// fetches children lazily when the user expands a resource.
func (s *Store) Children(name core.ResourceName) ([]core.ResourceName, error) {
	s.mu.Lock()
	id, ok := s.resIDs[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("datastore: no resource %q", name)
	}
	riTab, _ := s.eng.Table("resource_item")
	var out []core.ResourceName
	if err := riTab.IndexScan("resource_item_parent", []reldb.Value{reldb.Int(id)},
		func(_ int64, row reldb.Row) bool {
			out = append(out, core.ResourceName(row[1].Text()))
			return true
		}); err != nil {
		return nil, err
	}
	sortNames(out)
	return out, nil
}

// Ancestors returns all proper ancestors of a resource. With closure
// tables enabled this reads resource_has_ancestor; otherwise it walks
// parent_id links (the paper notes the tables exist to avoid that walk).
func (s *Store) Ancestors(name core.ResourceName) ([]core.ResourceName, error) {
	s.mu.Lock()
	id, ok := s.resIDs[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("datastore: no resource %q", name)
	}
	var out []core.ResourceName
	if s.UseClosureTables {
		rhaTab, _ := s.eng.Table("resource_has_ancestor")
		if err := rhaTab.PKScan([]reldb.Value{reldb.Int(id)},
			func(_ int64, row reldb.Row) bool {
				s.mu.Lock()
				out = append(out, s.resNames[row[1].Int64()])
				s.mu.Unlock()
				return true
			}); err != nil {
			return nil, err
		}
	} else {
		riTab, _ := s.eng.Table("resource_item")
		cur := id
		for {
			row, ok := riTab.Get(cur)
			if !ok || row[3].IsNull() {
				break
			}
			cur = row[3].Int64()
			prow, ok := riTab.Get(cur)
			if !ok {
				break
			}
			out = append(out, core.ResourceName(prow[1].Text()))
		}
	}
	sortNames(out)
	return out, nil
}

// Descendants returns all proper descendants of a resource.
func (s *Store) Descendants(name core.ResourceName) ([]core.ResourceName, error) {
	s.mu.Lock()
	id, ok := s.resIDs[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("datastore: no resource %q", name)
	}
	var out []core.ResourceName
	if s.UseClosureTables {
		rhdTab, _ := s.eng.Table("resource_has_descendant")
		if err := rhdTab.PKScan([]reldb.Value{reldb.Int(id)},
			func(_ int64, row reldb.Row) bool {
				s.mu.Lock()
				out = append(out, s.resNames[row[1].Int64()])
				s.mu.Unlock()
				return true
			}); err != nil {
			return nil, err
		}
	} else {
		// Breadth-first walk over parent links.
		riTab, _ := s.eng.Table("resource_item")
		queue := []int64{id}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			_ = riTab.IndexScan("resource_item_parent", []reldb.Value{reldb.Int(cur)},
				func(cid int64, row reldb.Row) bool {
					out = append(out, core.ResourceName(row[1].Text()))
					queue = append(queue, cid)
					return true
				})
		}
	}
	sortNames(out)
	return out, nil
}

func sortNames(ns []core.ResourceName) {
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
}

// ApplyFilter evaluates a resource filter over the store, returning the
// resulting resource family (relatives included per the filter's flag).
func (s *Store) ApplyFilter(rf core.ResourceFilter) (core.Family, error) {
	fam := core.NewFamily()
	var matched []core.ResourceName
	switch {
	case rf.Name != "":
		if s.HasResource(rf.Name) {
			matched = append(matched, rf.Name)
		}
	case rf.BaseName != "":
		ms, err := s.ResourcesWithBaseName(rf.BaseName)
		if err != nil {
			return fam, err
		}
		matched = ms
	case rf.Type != "":
		ms, err := s.ResourcesOfType(rf.Type)
		if err != nil {
			return fam, err
		}
		matched = ms
	default:
		// Attribute-only filter: scan all resources.
		riTab, _ := s.eng.Table("resource_item")
		riTab.Scan(func(_ int64, row reldb.Row) bool {
			matched = append(matched, core.ResourceName(row[1].Text()))
			return true
		})
	}
	// Apply attribute predicates.
	if len(rf.Attrs) > 0 {
		var kept []core.ResourceName
		for _, name := range matched {
			res, err := s.ResourceByName(name)
			if err != nil {
				return fam, err
			}
			ok := true
			for _, p := range rf.Attrs {
				got, has := res.Attributes[p.Attr]
				if !has || !p.Eval(got) {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, name)
			}
		}
		matched = kept
	}
	for _, m := range matched {
		fam.Add(m)
	}
	wantAnc := rf.Include == core.IncludeAncestors || rf.Include == core.IncludeBoth
	wantDesc := rf.Include == core.IncludeDescendants || rf.Include == core.IncludeBoth
	for _, m := range matched {
		if wantAnc {
			anc, err := s.Ancestors(m)
			if err != nil {
				return fam, err
			}
			for _, a := range anc {
				fam.Add(a)
			}
		}
		if wantDesc {
			desc, err := s.Descendants(m)
			if err != nil {
				return fam, err
			}
			for _, d := range desc {
				fam.Add(d)
			}
		}
	}
	return fam, nil
}

// familyResultIDs returns the set of performance-result IDs whose contexts
// touch any member of the family.
func (s *Store) familyResultIDs(fam core.Family) (map[int64]bool, error) {
	fhrTab, _ := s.eng.Table("focus_has_resource")
	rhfTab, _ := s.eng.Table("result_has_focus")
	focusSet := make(map[int64]bool)
	s.mu.Lock()
	memberIDs := make([]int64, 0, fam.Size())
	for _, name := range fam.Members() {
		if id, ok := s.resIDs[name]; ok {
			memberIDs = append(memberIDs, id)
		}
	}
	s.mu.Unlock()
	for _, rid := range memberIDs {
		if err := fhrTab.IndexScan("fhr_resource", []reldb.Value{reldb.Int(rid)},
			func(_ int64, row reldb.Row) bool {
				focusSet[row[0].Int64()] = true
				return true
			}); err != nil {
			return nil, err
		}
	}
	results := make(map[int64]bool)
	for fid := range focusSet {
		if err := rhfTab.IndexScan("rhf_focus", []reldb.Value{reldb.Int(fid)},
			func(_ int64, row reldb.Row) bool {
				results[row[0].Int64()] = true
				return true
			}); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// MatchingResultIDs evaluates a pr-filter: the IDs of performance results
// whose contexts contain at least one resource from every family.
func (s *Store) MatchingResultIDs(prf core.PRFilter) ([]int64, error) {
	prTab, _ := s.eng.Table("performance_result")
	if len(prf.Families) == 0 {
		var all []int64
		prTab.Scan(func(id int64, _ reldb.Row) bool {
			all = append(all, id)
			return true
		})
		return all, nil
	}
	// Intersect per-family result sets, smallest first.
	sets := make([]map[int64]bool, 0, len(prf.Families))
	for _, fam := range prf.Families {
		set, err := s.familyResultIDs(fam)
		if err != nil {
			return nil, err
		}
		sets = append(sets, set)
	}
	sort.Slice(sets, func(i, j int) bool { return len(sets[i]) < len(sets[j]) })
	var out []int64
	for id := range sets[0] {
		ok := true
		for _, set := range sets[1:] {
			if !set[id] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// CountMatches reports how many performance results a pr-filter selects —
// the GUI's live match count.
func (s *Store) CountMatches(prf core.PRFilter) (int, error) {
	ids, err := s.MatchingResultIDs(prf)
	if err != nil {
		return 0, err
	}
	return len(ids), nil
}

// CountFamilyMatches reports how many results one family alone selects —
// the GUI's per-family count.
func (s *Store) CountFamilyMatches(fam core.Family) (int, error) {
	set, err := s.familyResultIDs(fam)
	if err != nil {
		return 0, err
	}
	return len(set), nil
}

// ResultByID materializes a performance result with its contexts.
func (s *Store) ResultByID(id int64) (*core.PerformanceResult, error) {
	prTab, _ := s.eng.Table("performance_result")
	row, ok := prTab.Get(id)
	if !ok {
		return nil, fmt.Errorf("datastore: no performance result %d", id)
	}
	pr := &core.PerformanceResult{Value: row[5].Float64()}
	var err error
	if pr.Execution, err = s.nameOf("execution", row[1].Int64()); err != nil {
		return nil, err
	}
	if pr.Metric, err = s.nameOf("metric", row[2].Int64()); err != nil {
		return nil, err
	}
	if pr.Tool, err = s.nameOf("performance_tool", row[3].Int64()); err != nil {
		return nil, err
	}
	if pr.Units, err = s.nameOf("units", row[4].Int64()); err != nil {
		return nil, err
	}
	// Contexts: result -> foci -> resources, via PK-prefix scans on the
	// composite-keyed link tables.
	rhfTab, _ := s.eng.Table("result_has_focus")
	fTab, _ := s.eng.Table("focus")
	fhrTab, _ := s.eng.Table("focus_has_resource")
	var ctxErr error
	scanErr := rhfTab.PKScan([]reldb.Value{reldb.Int(id)}, func(_ int64, link reldb.Row) bool {
		fid := link[1].Int64()
		frow, ok := fTab.Get(fid)
		if !ok {
			ctxErr = fmt.Errorf("datastore: missing focus %d", fid)
			return false
		}
		ft, err := core.ParseFocusType(frow[1].Text())
		if err != nil {
			ctxErr = err
			return false
		}
		ctx := core.Context{Type: ft}
		if err := fhrTab.PKScan([]reldb.Value{reldb.Int(fid)}, func(_ int64, fr reldb.Row) bool {
			s.mu.Lock()
			ctx.Resources = append(ctx.Resources, s.resNames[fr[1].Int64()])
			s.mu.Unlock()
			return true
		}); err != nil {
			ctxErr = err
			return false
		}
		pr.Contexts = append(pr.Contexts, ctx)
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	return pr, nil
}

func (s *Store) nameOf(table string, id int64) (string, error) {
	t, _ := s.eng.Table(table)
	row, ok := t.Get(id)
	if !ok {
		return "", fmt.Errorf("datastore: no %s id %d", table, id)
	}
	return row[1].Text(), nil
}

// ResultsOfExecution materializes every performance result of one
// execution via the execution index.
func (s *Store) ResultsOfExecution(exec string) ([]*core.PerformanceResult, error) {
	s.mu.Lock()
	execID, ok := s.execIDs[exec]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("datastore: unknown execution %q", exec)
	}
	prTab, _ := s.eng.Table("performance_result")
	var ids []int64
	if err := prTab.IndexScan("performance_result_exec", []reldb.Value{reldb.Int(execID)},
		func(id int64, _ reldb.Row) bool {
			ids = append(ids, id)
			return true
		}); err != nil {
		return nil, err
	}
	out := make([]*core.PerformanceResult, 0, len(ids))
	for _, id := range ids {
		pr, err := s.ResultByID(id)
		if err != nil {
			return nil, err
		}
		out = append(out, pr)
	}
	return out, nil
}

// QueryResults evaluates a pr-filter and materializes the matching
// results.
func (s *Store) QueryResults(prf core.PRFilter) ([]*core.PerformanceResult, error) {
	ids, err := s.MatchingResultIDs(prf)
	if err != nil {
		return nil, err
	}
	out := make([]*core.PerformanceResult, 0, len(ids))
	for _, id := range ids {
		pr, err := s.ResultByID(id)
		if err != nil {
			return nil, err
		}
		out = append(out, pr)
	}
	return out, nil
}

// Applications lists application names, sorted.
func (s *Store) Applications() []string { return s.sortedNames("application") }

// Executions lists execution names, sorted.
func (s *Store) Executions() []string { return s.sortedNames("execution") }

// Metrics lists metric names, sorted.
func (s *Store) Metrics() []string { return s.sortedNames("metric") }

// Tools lists performance tool names, sorted.
func (s *Store) Tools() []string { return s.sortedNames("performance_tool") }

func (s *Store) sortedNames(table string) []string {
	t, ok := s.eng.Table(table)
	if !ok {
		return nil
	}
	var out []string
	t.Scan(func(_ int64, row reldb.Row) bool {
		out = append(out, row[1].Text())
		return true
	})
	sort.Strings(out)
	return out
}
