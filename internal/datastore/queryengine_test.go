package datastore

import (
	"fmt"
	"sync"
	"testing"

	"perftrack/internal/core"
	"perftrack/internal/ptdf"
)

// seedAttrStudy builds a store with processors carrying numeric and
// string attributes for the attribute-filter edge-case tests.
func seedAttrStudy(t *testing.T) *Store {
	t.Helper()
	s := newStore(t)
	if _, err := s.AddResource("/irs", "application", ""); err != nil {
		t.Fatal(err)
	}
	for i, clock := range []string{"700", "1000", "2400"} {
		name := core.ResourceName(fmt.Sprintf("/GM/MCR/batch/n%d/p0", i))
		if _, err := s.AddResource(name, "grid/machine/partition/node/processor", ""); err != nil {
			t.Fatal(err)
		}
		if err := s.SetResourceAttribute(name, "clock MHz", clock); err != nil {
			t.Fatal(err)
		}
	}
	// One processor with a vendor but no clock attribute.
	if _, err := s.AddResource("/GM/MCR/batch/n3/p0", "grid/machine/partition/node/processor", ""); err != nil {
		t.Fatal(err)
	}
	if err := s.SetResourceAttribute("/GM/MCR/batch/n3/p0", "vendor", "Intel"); err != nil {
		t.Fatal(err)
	}
	return s
}

func famNames(fam core.Family) []core.ResourceName { return fam.Members() }

func TestAttrFilterMissingAttribute(t *testing.T) {
	s := seedAttrStudy(t)
	// n3 has no "clock MHz" attribute: it must not match any clock
	// predicate, including != which would hold vacuously.
	fam, err := s.ApplyFilter(core.ResourceFilter{
		Attrs: []core.AttrPredicate{{Attr: "clock MHz", Cmp: core.CmpNe, Value: "0"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fam.Size() != 3 || fam.Contains("/GM/MCR/batch/n3/p0") {
		t.Errorf("missing-attribute resource matched: %v", famNames(fam))
	}
	// A predicate on an attribute no resource has selects nothing.
	fam, err = s.ApplyFilter(core.ResourceFilter{
		Attrs: []core.AttrPredicate{{Attr: "no such attr", Cmp: core.CmpEq, Value: "x"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fam.Size() != 0 {
		t.Errorf("nonexistent attribute matched %v", famNames(fam))
	}
}

func TestAttrFilterNumericVsLexicographic(t *testing.T) {
	s := seedAttrStudy(t)
	// Numeric comparison: "700" < "1000" numerically even though
	// "700" > "1000" lexicographically.
	fam, err := s.ApplyFilter(core.ResourceFilter{
		Attrs: []core.AttrPredicate{{Attr: "clock MHz", Cmp: core.CmpGt, Value: "900"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fam.Size() != 2 || fam.Contains("/GM/MCR/batch/n0/p0") {
		t.Errorf("clock > 900 = %v, want the 1000 and 2400 processors", famNames(fam))
	}
	// Lexicographic comparison when an operand is not numeric.
	fam, err = s.ApplyFilter(core.ResourceFilter{
		Attrs: []core.AttrPredicate{{Attr: "vendor", Cmp: core.CmpGe, Value: "Intel"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fam.Size() != 1 || !fam.Contains("/GM/MCR/batch/n3/p0") {
		t.Errorf("vendor >= Intel = %v", famNames(fam))
	}
}

func TestAttrFilterCombinedWithTypeAndBaseName(t *testing.T) {
	s := seedAttrStudy(t)
	// Give the application the same attribute value to prove the type
	// filter still constrains the result.
	if err := s.SetResourceAttribute("/irs", "clock MHz", "2400"); err != nil {
		t.Fatal(err)
	}
	fam, err := s.ApplyFilter(core.ResourceFilter{
		Type:  "grid/machine/partition/node/processor",
		Attrs: []core.AttrPredicate{{Attr: "clock MHz", Cmp: core.CmpEq, Value: "2400"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fam.Size() != 1 || !fam.Contains("/GM/MCR/batch/n2/p0") {
		t.Errorf("type+attr = %v", famNames(fam))
	}
	fam, err = s.ApplyFilter(core.ResourceFilter{
		BaseName: "p0",
		Attrs:    []core.AttrPredicate{{Attr: "clock MHz", Cmp: core.CmpLe, Value: "1000"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fam.Size() != 2 || fam.Contains("/GM/MCR/batch/n2/p0") {
		t.Errorf("base+attr = %v", famNames(fam))
	}
	// Conjunction of two attribute predicates.
	fam, err = s.ApplyFilter(core.ResourceFilter{
		Attrs: []core.AttrPredicate{
			{Attr: "clock MHz", Cmp: core.CmpGt, Value: "500"},
			{Attr: "clock MHz", Cmp: core.CmpLt, Value: "1500"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fam.Size() != 2 || fam.Contains("/GM/MCR/batch/n2/p0") {
		t.Errorf("two predicates = %v", famNames(fam))
	}
}

func TestAttrFilterLastWriteWins(t *testing.T) {
	s := seedAttrStudy(t)
	// Re-setting an attribute changes its effective value; the index path
	// must match the materialized-resource view (last write wins).
	if err := s.SetResourceAttribute("/GM/MCR/batch/n0/p0", "clock MHz", "3000"); err != nil {
		t.Fatal(err)
	}
	fam, err := s.ApplyFilter(core.ResourceFilter{
		Attrs: []core.AttrPredicate{{Attr: "clock MHz", Cmp: core.CmpGt, Value: "2500"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fam.Size() != 1 || !fam.Contains("/GM/MCR/batch/n0/p0") {
		t.Errorf("after overwrite = %v", famNames(fam))
	}
	res, err := s.ResourceByName("/GM/MCR/batch/n0/p0")
	if err != nil {
		t.Fatal(err)
	}
	if res.Attributes["clock MHz"] != "3000" {
		t.Errorf("materialized value = %q, want 3000", res.Attributes["clock MHz"])
	}
}

func TestMatchCacheHitsAndGenerationBump(t *testing.T) {
	s := seedStudy(t)
	frost, err := s.ApplyFilter(core.ResourceFilter{Name: "/GF/Frost", Include: core.IncludeDescendants})
	if err != nil {
		t.Fatal(err)
	}
	prf := core.PRFilter{Families: []core.Family{frost}}
	n1, err := s.CountMatches(prf)
	if err != nil {
		t.Fatal(err)
	}
	before := s.QueryEngineStats()
	n2, err := s.CountMatches(prf)
	if err != nil {
		t.Fatal(err)
	}
	after := s.QueryEngineStats()
	if n1 != n2 {
		t.Fatalf("repeated count changed: %d then %d", n1, n2)
	}
	if after.CacheHits <= before.CacheHits {
		t.Errorf("repeated CountMatches did not hit the cache: %+v -> %+v", before, after)
	}

	// Loading a new record bumps the generation and evicts stale counts.
	gen := s.Generation()
	if err := s.LoadRecord(ptdf.PerfResultRec{
		Exec: "irs-frost", Metric: "wall time", Value: 99, Units: "seconds", Tool: "test",
		Sets: []ptdf.ResourceSet{{Names: []core.ResourceName{"/irs", "/GF/Frost"}}},
	}); err != nil {
		t.Fatal(err)
	}
	if s.Generation() == gen {
		t.Fatal("LoadRecord did not bump the store generation")
	}
	n3, err := s.CountMatches(prf)
	if err != nil {
		t.Fatal(err)
	}
	if n3 != n1+1 {
		t.Errorf("count after load = %d, want %d (stale cache served?)", n3, n1+1)
	}
}

func TestMatchingResultIDsCallerMayMutate(t *testing.T) {
	s := seedStudy(t)
	frost, err := s.ApplyFilter(core.ResourceFilter{Name: "/GF/Frost", Include: core.IncludeDescendants})
	if err != nil {
		t.Fatal(err)
	}
	prf := core.PRFilter{Families: []core.Family{frost}}
	ids, err := s.MatchingResultIDs(prf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		ids[i] = -1 // scribble over the returned slice
	}
	again, err := s.MatchingResultIDs(prf)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range again {
		if id < 0 {
			t.Fatal("cached ID-set was corrupted by caller mutation")
		}
	}
}

func TestInvalidateQueryCache(t *testing.T) {
	s := seedStudy(t)
	frost, _ := s.ApplyFilter(core.ResourceFilter{Name: "/GF/Frost", Include: core.IncludeDescendants})
	if _, err := s.CountFamilyMatches(frost); err != nil {
		t.Fatal(err)
	}
	if s.QueryEngineStats().CacheEntries == 0 {
		t.Fatal("no cache entries after a count")
	}
	gen := s.Generation()
	s.InvalidateQueryCache()
	if s.Generation() == gen {
		t.Fatal("InvalidateQueryCache did not bump the generation")
	}
	// The next lookup at the new generation discards the old entries.
	if _, err := s.CountFamilyMatches(frost); err != nil {
		t.Fatal(err)
	}
	if got := s.QueryEngineStats().CacheEntries; got != 1 {
		t.Errorf("cache entries after invalidate+recount = %d, want 1", got)
	}
}

// TestParallelFamilyEvaluation exercises the worker-pool path with many
// families and concurrent callers; run under -race it proves the
// evaluator is race-clean.
func TestParallelFamilyEvaluation(t *testing.T) {
	s := seedStudy(t)
	var fams []core.Family
	for _, rf := range []core.ResourceFilter{
		{Name: "/GF/Frost", Include: core.IncludeDescendants},
		{Type: "application"},
		{BaseName: "batch", Include: core.IncludeDescendants},
		{Name: "/GM/MCR", Include: core.IncludeDescendants},
		{Type: "grid/machine/partition/node/processor"},
	} {
		fam, err := s.ApplyFilter(rf)
		if err != nil {
			t.Fatal(err)
		}
		fams = append(fams, fam)
	}
	want, err := s.CountMatches(core.PRFilter{Families: fams})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				// Mix cached and cold evaluations across goroutines.
				if i%5 == 0 && g == 0 {
					s.InvalidateQueryCache()
				}
				n, err := s.CountMatches(core.PRFilter{Families: fams})
				if err != nil {
					t.Error(err)
					return
				}
				if n != want {
					t.Errorf("concurrent count = %d, want %d", n, want)
					return
				}
				if _, err := s.CountFamilyMatches(fams[i%len(fams)]); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestCountMatchesNoFamiliesCountsAll(t *testing.T) {
	s := seedStudy(t)
	n, err := s.CountMatches(core.PRFilter{})
	if err != nil {
		t.Fatal(err)
	}
	ids, err := s.MatchingResultIDs(core.PRFilter{})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(ids) || n != 4 {
		t.Errorf("all-results count = %d, ids = %d, want 4", n, len(ids))
	}
}
