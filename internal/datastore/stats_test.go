package datastore

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// statsDoc builds a PTdf document with a known statistics profile:
// one application, execs executions, and per execution one "nprocs"
// attribute (distinct across executions), one shared "os" attribute
// (one distinct value), and results×2 performance results over two
// metrics.
func statsDoc(execs, results int) string {
	var b strings.Builder
	b.WriteString("Application statapp\nResource /statapp application\n")
	for e := 0; e < execs; e++ {
		fmt.Fprintf(&b, "Execution se-%d statapp\n", e)
		fmt.Fprintf(&b, "Resource /se-%d execution se-%d\n", e, e)
		fmt.Fprintf(&b, "ResourceAttribute /se-%d nprocs %d string\n", e, 1<<e)
		fmt.Fprintf(&b, "ResourceAttribute /se-%d os linux string\n", e)
		for i := 0; i < results; i++ {
			fmt.Fprintf(&b, "PerfResult se-%d /statapp,/se-%d(primary) tool \"wall time\" %d.5 seconds\n", e, e, i)
			fmt.Fprintf(&b, "PerfResult se-%d /statapp,/se-%d(primary) tool \"flops\" %d.0 ops\n", e, e, i)
		}
	}
	return b.String()
}

func TestTableStatisticsCounts(t *testing.T) {
	s := newStore(t)
	if _, err := s.LoadPTdf(strings.NewReader(statsDoc(4, 3))); err != nil {
		t.Fatal(err)
	}
	st := s.TableStatistics()
	if st.Generation == 0 {
		t.Error("generation = 0 after a committed load")
	}
	pr := st.TableStat("performance_result")
	if pr.Rows != 24 { // 4 execs × 3 results × 2 metrics
		t.Errorf("performance_result rows = %d, want 24", pr.Rows)
	}
	ex := st.TableStat("execution")
	if ex.Rows != 4 || ex.DistinctKeys != 4 {
		t.Errorf("execution stat = %+v, want 4 rows / 4 distinct", ex)
	}
	me := st.TableStat("metric")
	if me.DistinctKeys != 2 {
		t.Errorf("metric distinct = %d, want 2", me.DistinctKeys)
	}
	if got := st.TableStat("no_such_table"); got != (TableStat{}) {
		t.Errorf("unknown table stat = %+v, want zero", got)
	}

	np, ok := st.AttributeStat("nprocs")
	if !ok || np.Rows != 4 || np.Distinct != 4 {
		t.Errorf("nprocs stat = %+v (%v), want 4 rows / 4 distinct", np, ok)
	}
	osAttr, ok := st.AttributeStat("os")
	if !ok || osAttr.Rows != 4 || osAttr.Distinct != 1 {
		t.Errorf("os stat = %+v (%v), want 4 rows / 1 distinct", osAttr, ok)
	}
	if _, ok := st.AttributeStat("nope"); ok {
		t.Error("unknown attribute reported as known")
	}
}

func TestStatisticsPersistAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	fe, err := openEngine(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(fe)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadPTdf(strings.NewReader(statsDoc(3, 2))); err != nil {
		t.Fatal(err)
	}
	live := s.TableStatistics()
	persisted, err := s.PersistedStatistics()
	if err != nil {
		t.Fatal(err)
	}
	// Generations are process-local commit counters and the persisted
	// snapshot rides the committing batch, so only the table and
	// attribute numbers must agree (in a canonical order).
	if normalizeStats(persisted) != normalizeStats(live) {
		t.Errorf("persisted stats diverge from live:\n%v\nvs\n%v", persisted, live)
	}
	if err := fe.Close(); err != nil {
		t.Fatal(err)
	}

	// A reopened store serves the same snapshot before any new commit.
	fe2, err := openEngine(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fe2.Close()
	s2, err := Open(fe2)
	if err != nil {
		t.Fatal(err)
	}
	reread, err := s2.PersistedStatistics()
	if err != nil {
		t.Fatal(err)
	}
	if normalizeStats(reread) != normalizeStats(live) {
		t.Errorf("reopened stats diverge from pre-close:\n%v\nvs\n%v", reread, live)
	}

	// The next commit rewrites the snapshot, with no stale rows left
	// behind.
	if _, err := s2.LoadPTdf(strings.NewReader(ptdfExtraDoc)); err != nil {
		t.Fatal(err)
	}
	after, err := s2.PersistedStatistics()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := after.TableStat("performance_result").Rows, live.TableStat("performance_result").Rows+1; got != want {
		t.Errorf("performance_result rows after second load = %d, want %d", got, want)
	}
	if len(after.Tables) != len(live.Tables) {
		t.Errorf("table entries = %d, want %d (stale rows not rewritten?)", len(after.Tables), len(live.Tables))
	}
}

// normalizeStats renders a snapshot with the generation dropped and the
// tables in name order, for comparisons across the persist round-trip.
func normalizeStats(st TableStatistics) string {
	tables := append([]TableStat(nil), st.Tables...)
	sort.Slice(tables, func(i, j int) bool { return tables[i].Table < tables[j].Table })
	return fmt.Sprint(tables, st.Attributes)
}

// ptdfExtraDoc adds one more execution and result on top of statsDoc.
const ptdfExtraDoc = `Application statapp
Execution se-extra statapp
Resource /se-extra execution se-extra
PerfResult se-extra /statapp,/se-extra(primary) tool "wall time" 9.5 seconds
`

func TestAttributeStatDistinctIsLowerBoundPastCap(t *testing.T) {
	s := newStore(t)
	var b strings.Builder
	b.WriteString("Application capapp\nResource /capapp application\n")
	for i := 0; i < maxAttrStatValues+10; i++ {
		fmt.Fprintf(&b, "Resource /n%d grid\n", i)
		fmt.Fprintf(&b, "ResourceAttribute /n%d hostname host-%d string\n", i, i)
	}
	if _, err := s.LoadPTdf(strings.NewReader(b.String())); err != nil {
		t.Fatal(err)
	}
	st, ok := s.TableStatistics().AttributeStat("hostname")
	if !ok {
		t.Fatal("hostname attribute unknown")
	}
	if st.Rows != maxAttrStatValues+10 {
		t.Errorf("rows = %d, want %d", st.Rows, maxAttrStatValues+10)
	}
	if st.Distinct < maxAttrStatValues || st.Distinct > st.Rows {
		t.Errorf("distinct = %d, want a lower bound in [%d, %d]", st.Distinct, maxAttrStatValues, st.Rows)
	}
}

func TestExecutionResultIDsSortedAndIndexed(t *testing.T) {
	s := newStore(t)
	if _, err := s.LoadPTdf(strings.NewReader(statsDoc(3, 4))); err != nil {
		t.Fatal(err)
	}
	ids, err := s.ExecutionResultIDs("se-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 8 { // 4 results × 2 metrics
		t.Fatalf("ids = %d, want 8", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("ids not strictly ascending: %v", ids)
		}
	}
	// Every ID really belongs to se-1.
	tab, _ := s.Table("performance_result")
	execID, _ := s.LookupDict("execution", "se-1")
	for _, id := range ids {
		row, ok := tab.Get(id)
		if !ok || row[1].Int64() != execID {
			t.Fatalf("id %d not a se-1 result", id)
		}
	}
	if _, err := s.ExecutionResultIDs("nope"); err == nil {
		t.Fatal("unknown execution did not error")
	}
}
