package datastore

import (
	"fmt"
	"sort"

	"perftrack/internal/reldb"
)

// Planner statistics. The cost-based planner (internal/planner) chooses
// between attribute-index scans, cached ID-set intersection, zone-map
// segment scans, and full scans using row counts, distinct-value
// estimates, and segment coverage. The live numbers come from the name
// caches the store already maintains; they are persisted to the
// table_statistics table at batch-commit time so a restarted store can
// warm-start its cost model, and served over the wire via GET /v1/stats.

// maxAttrStatValues caps the per-attribute distinct-value set. Past the
// cap the count becomes a lower-bound estimate, which is all the cost
// model needs (it only distinguishes selective from unselective keys).
const maxAttrStatValues = 1024

// attrStat accumulates one attribute name's statistics. Maintained under
// s.mu by the sole resource_attribute insert path and rebuilt with the
// other caches on warm start and rollback.
type attrStat struct {
	rows     int64
	vals     map[string]struct{}
	overflow bool
}

// noteAttrLocked folds one resource_attribute row into the statistics.
// Callers hold s.mu.
func (s *Store) noteAttrLocked(attr, value string) {
	st := s.attrStats[attr]
	if st == nil {
		st = &attrStat{vals: make(map[string]struct{})}
		s.attrStats[attr] = st
	}
	st.rows++
	if !st.overflow {
		st.vals[value] = struct{}{}
		if len(st.vals) > maxAttrStatValues {
			st.overflow = true
		}
	}
}

// TableStat describes one schema table for the planner: total rows, the
// number of distinct logical keys (names, for the interned dictionary
// tables), and how many rows are resident in flushed columnar segments.
type TableStat struct {
	Table        string `json:"table"`
	Rows         int64  `json:"rows"`
	DistinctKeys int64  `json:"distinct_keys,omitempty"`
	SegmentRows  int64  `json:"segment_rows,omitempty"`
}

// AttributeStat describes one attribute name: how many resource_attribute
// rows carry it and (a lower bound on) its distinct values.
type AttributeStat struct {
	Name     string `json:"name"`
	Rows     int64  `json:"rows"`
	Distinct int64  `json:"distinct"`
}

// TableStatistics is a planner-facing statistics snapshot.
type TableStatistics struct {
	Generation uint64          `json:"generation"`
	Tables     []TableStat     `json:"tables"`
	Attributes []AttributeStat `json:"attributes,omitempty"`
}

// TableStat returns one table's entry, or a zero value when absent.
func (ts TableStatistics) TableStat(name string) TableStat {
	for _, t := range ts.Tables {
		if t.Table == name {
			return t
		}
	}
	return TableStat{}
}

// AttributeStat returns one attribute's entry and whether it is known.
func (ts TableStatistics) AttributeStat(name string) (AttributeStat, bool) {
	for _, a := range ts.Attributes {
		if a.Name == name {
			return a, true
		}
	}
	return AttributeStat{}, false
}

// TableStatistics snapshots the live planner statistics: engine row
// counts, distinct-key counts from the name caches, per-attribute
// statistics, and segment-resident rows from the compaction state.
func (s *Store) TableStatistics() TableStatistics {
	s.mu.Lock()
	distinct := map[string]int64{
		"application":        int64(len(s.appIDs)),
		"execution":          int64(len(s.execIDs)),
		"focus_framework":    int64(len(s.typeIDs)),
		"resource_item":      int64(len(s.resIDs)),
		"resource_attribute": int64(len(s.attrStats)),
		"metric":             int64(len(s.metricID)),
		"performance_tool":   int64(len(s.toolID)),
		"units":              int64(len(s.unitsID)),
		"focus":              int64(len(s.focusIDs)),
	}
	attrs := make([]AttributeStat, 0, len(s.attrStats))
	for name, st := range s.attrStats {
		attrs = append(attrs, AttributeStat{
			Name: name, Rows: st.rows, Distinct: int64(len(st.vals)),
		})
	}
	s.mu.Unlock()
	sort.Slice(attrs, func(i, j int) bool { return attrs[i].Name < attrs[j].Name })

	segRows := map[string]int64{}
	if sv, ok := s.eng.(interface{ SegmentStats() reldb.SegmentStats }); ok {
		for _, t := range sv.SegmentStats().Tables {
			segRows[t.Table] = t.Rows
		}
	}
	out := TableStatistics{Generation: s.gen.Load(), Attributes: attrs}
	for _, name := range tableNames {
		if name == "table_statistics" {
			continue
		}
		tab, ok := s.eng.Table(name)
		if !ok {
			continue
		}
		out.Tables = append(out.Tables, TableStat{
			Table:        name,
			Rows:         int64(tab.Len()),
			DistinctKeys: distinct[name],
			SegmentRows:  segRows[name],
		})
	}
	return out
}

// persistStatistics rewrites the table_statistics rows from a fresh
// snapshot. It runs on the batch-commit path with wmu held (and s.mu
// released), after the data transaction committed and before the WAL
// group flush, so the statistics ride the same flush as the batch. The
// rows are advisory: a crash between delete and reinsert only costs the
// warm start, never correctness.
func (s *Store) persistStatistics() error {
	tab, ok := s.eng.Table("table_statistics")
	if !ok {
		return nil
	}
	snap := s.TableStatistics()
	var stale []int64
	tab.Scan(func(id int64, _ reldb.Row) bool {
		stale = append(stale, id)
		return true
	})
	for _, id := range stale {
		if err := s.eng.Delete("table_statistics", id); err != nil {
			return err
		}
	}
	gen := reldb.Int(int64(snap.Generation))
	for _, t := range snap.Tables {
		if _, err := s.eng.Insert("table_statistics", reldb.Row{
			reldb.Null(), reldb.Str("table"), reldb.Str(t.Table),
			reldb.Int(t.Rows), reldb.Int(t.DistinctKeys), reldb.Int(t.SegmentRows), gen,
		}); err != nil {
			return err
		}
	}
	for _, a := range snap.Attributes {
		if _, err := s.eng.Insert("table_statistics", reldb.Row{
			reldb.Null(), reldb.Str("attribute"), reldb.Str(a.Name),
			reldb.Int(a.Rows), reldb.Int(a.Distinct), reldb.Int(0), gen,
		}); err != nil {
			return err
		}
	}
	return nil
}

// PersistedStatistics reads back the statistics written by the last
// batch commit. A store that has committed nothing since opening returns
// an empty snapshot.
func (s *Store) PersistedStatistics() (TableStatistics, error) {
	tab, ok := s.eng.Table("table_statistics")
	if !ok {
		return TableStatistics{}, fmt.Errorf("datastore: no table_statistics table: %w", ErrNotFound)
	}
	var out TableStatistics
	tab.Scan(func(_ int64, row reldb.Row) bool {
		gen := uint64(row[6].Int64())
		if gen > out.Generation {
			out.Generation = gen
		}
		switch row[1].Text() {
		case "table":
			out.Tables = append(out.Tables, TableStat{
				Table:        row[2].Text(),
				Rows:         row[3].Int64(),
				DistinctKeys: row[4].Int64(),
				SegmentRows:  row[5].Int64(),
			})
		case "attribute":
			out.Attributes = append(out.Attributes, AttributeStat{
				Name:     row[2].Text(),
				Rows:     row[3].Int64(),
				Distinct: row[4].Int64(),
			})
		}
		return true
	})
	sort.Slice(out.Tables, func(i, j int) bool { return out.Tables[i].Table < out.Tables[j].Table })
	sort.Slice(out.Attributes, func(i, j int) bool { return out.Attributes[i].Name < out.Attributes[j].Name })
	return out, nil
}

// --- planner access-path surface ---

// Table exposes one engine table for read-only planner access paths
// (point lookups, index scans, PK-range scans). Writers must go through
// the record-load path; the planner only reads.
func (s *Store) Table(name string) (*reldb.Table, bool) {
	return s.eng.Table(name)
}

// DictNames loads an ID → name dictionary table (execution, metric,
// performance_tool, units, application) into a map in one scan.
func (s *Store) DictNames(table string) (map[int64]string, error) {
	return s.dictNames(table)
}

// LookupDict resolves a name in one of the interned dictionary caches
// without touching the engine. ok is false for unknown names and
// non-dictionary tables.
func (s *Store) LookupDict(table, name string) (id int64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var cache map[string]int64
	switch table {
	case "application":
		cache = s.appIDs
	case "execution":
		cache = s.execIDs
	case "metric":
		cache = s.metricID
	case "performance_tool":
		cache = s.toolID
	case "units":
		cache = s.unitsID
	default:
		return 0, false
	}
	id, ok = cache[name]
	return id, ok
}

// ExecutionResultIDs returns the sorted performance_result IDs of one
// execution via the execution_id index.
func (s *Store) ExecutionResultIDs(exec string) ([]int64, error) {
	id, ok := s.LookupDict("execution", exec)
	if !ok {
		return nil, fmt.Errorf("datastore: execution %q not found: %w", exec, ErrNotFound)
	}
	tab, ok := s.eng.Table("performance_result")
	if !ok {
		return nil, fmt.Errorf("datastore: no performance_result table: %w", ErrNotFound)
	}
	var ids []int64
	if err := tab.IndexScan("performance_result_exec", []reldb.Value{reldb.Int(id)},
		func(rid int64, _ reldb.Row) bool {
			ids = append(ids, rid)
			return true
		}); err != nil {
		return nil, err
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// ResultSegmentView returns the columnar segment view of the
// performance_result table when the engine keeps one and the scan path
// is enabled.
func (s *Store) ResultSegmentView() (*reldb.SegView, bool) {
	sv, ok := s.eng.(segmentViewer)
	if !ok {
		return nil, false
	}
	return sv.SegmentView("performance_result")
}

// NoteSegmentScan records one planner-driven segment range scan in the
// store telemetry, mirroring the materializer's accounting.
func (s *Store) NoteSegmentScan(rows, pruned int, bytes int64) {
	s.tel.segmentScans.Add(1)
	s.tel.segmentRowsScanned.Add(uint64(rows))
	s.tel.zoneMapPrunes.Add(uint64(pruned))
	s.scanBytes.Observe(float64(bytes))
}
