package datastore

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"perftrack/internal/core"
	"perftrack/internal/ptdf"
	"perftrack/internal/reldb"
)

// resultFor builds a well-formed scalar result record against a resource.
func resultFor(exec, res string) ptdf.PerfResultRec {
	return ptdf.PerfResultRec{
		Exec: exec, Metric: "m", Value: 1, Units: "u", Tool: "t",
		Sets: []ptdf.ResourceSet{{Names: []core.ResourceName{core.ResourceName(res)}, Type: core.FocusPrimary}},
	}
}

func TestBatchStageCommit(t *testing.T) {
	s := newStore(t)
	b := s.NewBatch()
	b.Stage(ptdf.ApplicationRec{Name: "a"})
	b.Stage(ptdf.ExecutionRec{Name: "e1", App: "a"})
	b.Stage(ptdf.ResourceRec{Name: "/a", Type: "application"})

	// Staging must not touch the store.
	if got := s.Stats(); got.Applications != 0 || got.Executions != 0 {
		t.Errorf("staging leaked into the store: %+v", got)
	}
	if b.Len() != 3 {
		t.Errorf("Len = %d", b.Len())
	}

	genBefore := s.Generation()
	stats, err := b.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 3 || stats.Apps != 1 || stats.Executions != 1 || stats.Resources != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if got := s.Stats(); got.Applications != 1 || got.Executions != 1 {
		t.Errorf("store after commit: %+v", got)
	}
	// One batch = exactly one generation bump, however many records.
	if got := s.Generation(); got != genBefore+1 {
		t.Errorf("generation bumped %d times, want 1", got-genBefore)
	}
}

func TestBatchCommitTwice(t *testing.T) {
	s := newStore(t)
	b := s.NewBatch()
	b.Stage(ptdf.ApplicationRec{Name: "a"})
	if _, err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Commit(); !errors.Is(err, ErrBatchDone) {
		t.Errorf("second commit: err = %v, want ErrBatchDone", err)
	}
}

func TestBatchEmptyCommitIsNoOp(t *testing.T) {
	s := newStore(t)
	gen := s.Generation()
	if _, err := s.NewBatch().Commit(); err != nil {
		t.Fatal(err)
	}
	if s.Generation() != gen {
		t.Error("empty commit bumped the generation")
	}
}

func TestBatchRollbackDiscards(t *testing.T) {
	s := newStore(t)
	b := s.NewBatch()
	b.Stage(ptdf.ApplicationRec{Name: "a"})
	b.Rollback()
	if _, err := b.Commit(); !errors.Is(err, ErrBatchDone) {
		t.Errorf("commit after rollback: err = %v, want ErrBatchDone", err)
	}
	if got := s.Stats(); got.Applications != 0 {
		t.Errorf("rollback leaked into the store: %+v", got)
	}
}

func TestBatchCommitFailureRollsBackWholeBatch(t *testing.T) {
	s := newStore(t)
	before := s.Stats()
	b := s.NewBatch()
	b.Stage(ptdf.ApplicationRec{Name: "a"})
	b.Stage(ptdf.ExecutionRec{Name: "e1", App: "a"})
	b.Stage(resultFor("nope", "/a"))
	_, err := b.Commit()
	if err == nil {
		t.Fatal("bad batch committed")
	}
	if !strings.Contains(err.Error(), "record 3") {
		t.Errorf("err = %v, want record index", err)
	}
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
	if after := s.Stats(); before != after {
		t.Errorf("failed batch left data: before %+v after %+v", before, after)
	}
}

// docFor builds a small self-contained PTdf document for one execution.
func docFor(i int) string {
	return fmt.Sprintf(`Application app%d
Execution exec-%d app%d
Resource /app%d application
Resource /exec-%d execution exec-%d
PerfResult exec-%d /app%d(primary) tool "wall time" %d.5 seconds
`, i, i, i, i, i, i, i, i, i)
}

func bulkSources(n int, bad map[int]bool) []BulkSource {
	docs := make([]BulkSource, n)
	for i := 0; i < n; i++ {
		i := i
		doc := docFor(i)
		if bad[i] {
			doc = strings.Replace(doc, "(primary)", "", 1) // drop focus: parse error
		}
		docs[i] = BulkSource{
			Name: fmt.Sprintf("doc-%d", i),
			Open: func() (io.ReadCloser, error) { return io.NopCloser(strings.NewReader(doc)), nil },
		}
	}
	return docs
}

func TestBulkLoadParallelOrderAndTotals(t *testing.T) {
	s := newStore(t)
	const n = 16
	results := s.BulkLoad(bulkSources(n, nil), 4)
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for i, dr := range results {
		if dr.Name != fmt.Sprintf("doc-%d", i) {
			t.Errorf("result %d out of order: %q", i, dr.Name)
		}
		if dr.Err != nil {
			t.Errorf("doc %d failed: %v", i, dr.Err)
		}
	}
	st := s.Stats()
	if st.Executions != n || st.Results != n || st.Applications != n {
		t.Errorf("store after bulk load: %+v", st)
	}
}

func TestBulkLoadFailedDocIsolated(t *testing.T) {
	dir := t.TempDir()
	fe, err := reldb.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(fe)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	results := s.BulkLoad(bulkSources(n, map[int]bool{3: true}), 4)
	for i, dr := range results {
		if i == 3 {
			if dr.Err == nil {
				t.Error("bad doc loaded without error")
			} else {
				if !strings.Contains(dr.Err.Error(), "doc-3") {
					t.Errorf("doc 3 error does not name the document: %v", dr.Err)
				}
				if !errors.Is(dr.Err, ErrBadSpec) {
					t.Errorf("doc 3 err = %v, want ErrBadSpec", dr.Err)
				}
			}
			continue
		}
		if dr.Err != nil {
			t.Errorf("doc %d failed alongside the bad one: %v", i, dr.Err)
		}
	}
	st := s.Stats()
	if st.Executions != n-1 || st.Results != n-1 {
		t.Errorf("store after bulk load with one bad doc: %+v", st)
	}
	if s.HasResource("/exec-3") || s.HasResource("/app3") {
		t.Error("failed document's resources are visible")
	}

	// The rollback must be durable: reopening from disk shows the same
	// n-1 committed documents and nothing of the failed one.
	before := s.Stats()
	if err := fe.Close(); err != nil {
		t.Fatal(err)
	}
	fe2, err := reldb.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fe2.Close()
	s2, err := Open(fe2)
	if err != nil {
		t.Fatal(err)
	}
	if after := s2.Stats(); before != after {
		t.Errorf("reopened store diverges: before %+v after %+v", before, after)
	}
	if s2.HasResource("/exec-3") {
		t.Error("failed document resurrected by WAL replay")
	}
}

func TestBulkLoadOpenErrorFailsOneDoc(t *testing.T) {
	s := newStore(t)
	docs := bulkSources(3, nil)
	docs[1].Open = func() (io.ReadCloser, error) { return nil, fmt.Errorf("no such file") }
	results := s.BulkLoad(docs, 2)
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "no such file") {
		t.Errorf("doc 1 err = %v", results[1].Err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("open failure spread: %v / %v", results[0].Err, results[2].Err)
	}
}

func TestBulkLoadStreamSourceError(t *testing.T) {
	s := newStore(t)
	boom := fmt.Errorf("source exploded")
	i := 0
	next := func() (string, io.ReadCloser, error) {
		if i >= 2 {
			return "", nil, boom
		}
		doc := docFor(i)
		i++
		return fmt.Sprintf("doc-%d", i-1), io.NopCloser(strings.NewReader(doc)), nil
	}
	var emitted int
	err := s.BulkLoadStream(next, 2, func(dr DocResult) {
		emitted++
		if dr.Err != nil {
			t.Errorf("%s failed: %v", dr.Name, dr.Err)
		}
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want source error", err)
	}
	if emitted != 2 {
		t.Errorf("emitted %d docs before the source error, want 2", emitted)
	}
}

// TestSentinelErrors pins the typed error surface: missing references
// are ErrNotFound, identity conflicts ErrExists, malformed input
// ErrBadSpec — the classes the server maps to 404/409/400.
func TestSentinelErrors(t *testing.T) {
	s := newStore(t)
	if _, err := s.LoadPTdf(strings.NewReader("Application a\nExecution e1 a\n")); err != nil {
		t.Fatal(err)
	}

	// Unknown execution reference.
	err := s.LoadRecord(resultFor("ghost", "/nowhere"))
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown execution: err = %v, want ErrNotFound", err)
	}

	// Redefining an execution under a different application.
	if err := s.LoadRecord(ptdf.ApplicationRec{Name: "b"}); err != nil {
		t.Fatal(err)
	}
	err = s.LoadRecord(ptdf.ExecutionRec{Name: "e1", App: "b"})
	if !errors.Is(err, ErrExists) {
		t.Errorf("execution conflict: err = %v, want ErrExists", err)
	}

	// Redefining a resource with a different type.
	if err := s.LoadRecord(ptdf.ResourceRec{Name: "/a", Type: "application"}); err != nil {
		t.Fatal(err)
	}
	err = s.LoadRecord(ptdf.ResourceRec{Name: "/a", Type: "execution"})
	if !errors.Is(err, ErrExists) {
		t.Errorf("resource type conflict: err = %v, want ErrExists", err)
	}

	// Syntax error in a document.
	if _, err := s.LoadPTdf(strings.NewReader("Nonsense\n")); !errors.Is(err, ErrBadSpec) {
		t.Errorf("bad syntax: err = %v, want ErrBadSpec", err)
	}

	// Read-path misses.
	if _, err := s.ResourceByName("/ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing resource: err = %v, want ErrNotFound", err)
	}
	if _, err := s.ExecutionDetail("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing execution: err = %v, want ErrNotFound", err)
	}
}
