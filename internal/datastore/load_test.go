package datastore

import (
	"strings"
	"testing"

	"perftrack/internal/core"
	"perftrack/internal/reldb"
)

const sampleDoc = `# PTdf for a small IRS run
Application irs
Execution irs-001 irs
ResourceType grid/machine/partition/node/processor
Resource /MCRGrid/MCR/batch/n1/p0 grid/machine/partition/node/processor
Resource /irs application
Resource /irs-001 execution irs-001
Resource /irs-001/p0 execution/process irs-001
ResourceAttribute /irs-001 nprocs 2 string
ResourceAttribute /irs-001/p0 node /MCRGrid/MCR/batch/n1 resource
ResourceConstraint /irs-001/p0 /MCRGrid/MCR/batch/n1/p0
PerfResult irs-001 /irs,/MCRGrid/MCR(primary) IRS "wall time" 98.5 seconds
PerfResult irs-001 /irs-001/p0(primary) IRS "cpu time" 97.25 seconds
`

func TestLoadPTdfDocument(t *testing.T) {
	s := newStore(t)
	stats, err := s.LoadPTdf(strings.NewReader(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 12 || stats.Results != 2 || stats.Resources != 4 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Attributes != 2 || stats.Constraints != 1 {
		t.Errorf("stats = %+v", stats)
	}
	// The resource-typed attribute became a constraint.
	p0, err := s.ResourceByName("/irs-001/p0")
	if err != nil {
		t.Fatal(err)
	}
	if len(p0.Constraints) != 2 {
		t.Errorf("constraints = %v", p0.Constraints)
	}
	// Results are queryable.
	fam, _ := s.ApplyFilter(core.ResourceFilter{Name: "/irs"})
	n, err := s.CountMatches(core.PRFilter{Families: []core.Family{fam}})
	if err != nil || n != 1 {
		t.Errorf("matches = %d, %v", n, err)
	}
}

func TestLoadPTdfErrorAnnotatesRecord(t *testing.T) {
	s := newStore(t)
	doc := "Application a\nExecution e1 a\nPerfResult e1 /ghost(primary) t m 1 u\n"
	_, err := s.LoadPTdf(strings.NewReader(doc))
	if err == nil || !strings.Contains(err.Error(), "record 3") {
		t.Errorf("err = %v", err)
	}
}

func TestLoadPTdfRejectsBadSyntax(t *testing.T) {
	s := newStore(t)
	if _, err := s.LoadPTdf(strings.NewReader("Garbage line\n")); err == nil {
		t.Error("bad syntax accepted")
	}
}

func TestLoadPTdfTypeExtensionRecord(t *testing.T) {
	s := newStore(t)
	doc := `ResourceType syncObject
ResourceType syncObject/messageTag
Resource /tags/42 syncObject/messageTag
`
	if _, err := s.LoadPTdf(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	if !s.Types().Has("syncObject/messageTag") {
		t.Error("type extension not applied")
	}
}

func TestLoadPTdfIdempotentEntities(t *testing.T) {
	s := newStore(t)
	doc := "Application a\nApplication a\nExecution e a\nExecution e a\nResource /r application\nResource /r application\n"
	stats, err := s.LoadPTdf(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 6 {
		t.Errorf("records = %d", stats.Records)
	}
	st := s.Stats()
	if st.Applications != 1 || st.Executions != 1 {
		t.Errorf("duplicate entities stored: %+v", st)
	}
}

// TestLoadPTdfRollsBackFailedFile is the regression test for partially
// loaded files: a bad record mid-stream must roll back every record the
// file already loaded, leaving the store exactly as it was.
func TestLoadPTdfRollsBackFailedFile(t *testing.T) {
	s := newStore(t)
	if _, err := s.LoadPTdf(strings.NewReader(sampleDoc)); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()

	// A document that loads several good records, then fails: the perf
	// result references a resource that was never defined.
	bad := `Application scorch
Execution scorch-9 scorch
Resource /scorch application
Resource /scorch-9 execution scorch-9
ResourceAttribute /scorch-9 nprocs 64 string
PerfResult scorch-9 /ghost(primary) tool "wall time" 1.5 seconds
`
	if _, err := s.LoadPTdf(strings.NewReader(bad)); err == nil {
		t.Fatal("bad document loaded without error")
	}

	after := s.Stats()
	if before != after {
		t.Errorf("failed load left data behind:\n before %+v\n after  %+v", before, after)
	}
	if s.HasResource("/scorch-9") || s.HasResource("/scorch") {
		t.Error("rolled-back resources still visible")
	}
	if _, err := s.ExecutionDetail("scorch-9"); err == nil {
		t.Error("rolled-back execution still visible")
	}
	apps, err := s.Applications()
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range apps {
		if app == "scorch" {
			t.Error("rolled-back application still listed")
		}
	}

	// The store remains fully usable: the same document, corrected, loads,
	// and the pre-existing data still answers queries.
	good := strings.Replace(bad, "/ghost(primary)", "/scorch(primary)", 1)
	stats, err := s.LoadPTdf(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 6 || stats.Results != 1 {
		t.Errorf("stats = %+v", stats)
	}
	fam, _ := s.ApplyFilter(core.ResourceFilter{Name: "/irs"})
	if n, err := s.CountMatches(core.PRFilter{Families: []core.Family{fam}}); err != nil || n != 1 {
		t.Errorf("pre-existing data lost after rollback: matches = %d, %v", n, err)
	}
}

// TestLoadPTdfRollbackSurvivesReopen checks that a rollback is durable:
// reopening the store from disk after a failed load shows none of the
// rolled-back rows (the WAL carries compensation records).
func TestLoadPTdfRollbackSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	fe, err := reldb.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(fe)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadPTdf(strings.NewReader(sampleDoc)); err != nil {
		t.Fatal(err)
	}
	bad := "Application ghostapp\nPerfResult nope /ghost(primary) t m 1 u\n"
	if _, err := s.LoadPTdf(strings.NewReader(bad)); err == nil {
		t.Fatal("bad document loaded without error")
	}
	before := s.Stats()
	if err := fe.Close(); err != nil {
		t.Fatal(err)
	}

	fe2, err := reldb.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fe2.Close()
	s2, err := Open(fe2)
	if err != nil {
		t.Fatal(err)
	}
	if after := s2.Stats(); before != after {
		t.Errorf("reopened store diverges:\n before %+v\n after  %+v", before, after)
	}
	apps2, err := s2.Applications()
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range apps2 {
		if app == "ghostapp" {
			t.Error("rolled-back application resurrected by WAL replay")
		}
	}
}

func TestLoadStatsAdd(t *testing.T) {
	a := LoadStats{Records: 1, Results: 2, Resources: 3}
	a.Add(LoadStats{Records: 10, Results: 20, Resources: 30, Attributes: 5})
	if a.Records != 11 || a.Results != 22 || a.Resources != 33 || a.Attributes != 5 {
		t.Errorf("sum = %+v", a)
	}
}
