package datastore

import (
	"strings"
	"testing"

	"perftrack/internal/core"
)

const sampleDoc = `# PTdf for a small IRS run
Application irs
Execution irs-001 irs
ResourceType grid/machine/partition/node/processor
Resource /MCRGrid/MCR/batch/n1/p0 grid/machine/partition/node/processor
Resource /irs application
Resource /irs-001 execution irs-001
Resource /irs-001/p0 execution/process irs-001
ResourceAttribute /irs-001 nprocs 2 string
ResourceAttribute /irs-001/p0 node /MCRGrid/MCR/batch/n1 resource
ResourceConstraint /irs-001/p0 /MCRGrid/MCR/batch/n1/p0
PerfResult irs-001 /irs,/MCRGrid/MCR(primary) IRS "wall time" 98.5 seconds
PerfResult irs-001 /irs-001/p0(primary) IRS "cpu time" 97.25 seconds
`

func TestLoadPTdfDocument(t *testing.T) {
	s := newStore(t)
	stats, err := s.LoadPTdf(strings.NewReader(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 12 || stats.Results != 2 || stats.Resources != 4 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Attributes != 2 || stats.Constraints != 1 {
		t.Errorf("stats = %+v", stats)
	}
	// The resource-typed attribute became a constraint.
	p0, err := s.ResourceByName("/irs-001/p0")
	if err != nil {
		t.Fatal(err)
	}
	if len(p0.Constraints) != 2 {
		t.Errorf("constraints = %v", p0.Constraints)
	}
	// Results are queryable.
	fam, _ := s.ApplyFilter(core.ResourceFilter{Name: "/irs"})
	n, err := s.CountMatches(core.PRFilter{Families: []core.Family{fam}})
	if err != nil || n != 1 {
		t.Errorf("matches = %d, %v", n, err)
	}
}

func TestLoadPTdfErrorAnnotatesRecord(t *testing.T) {
	s := newStore(t)
	doc := "Application a\nExecution e1 a\nPerfResult e1 /ghost(primary) t m 1 u\n"
	_, err := s.LoadPTdf(strings.NewReader(doc))
	if err == nil || !strings.Contains(err.Error(), "record 3") {
		t.Errorf("err = %v", err)
	}
}

func TestLoadPTdfRejectsBadSyntax(t *testing.T) {
	s := newStore(t)
	if _, err := s.LoadPTdf(strings.NewReader("Garbage line\n")); err == nil {
		t.Error("bad syntax accepted")
	}
}

func TestLoadPTdfTypeExtensionRecord(t *testing.T) {
	s := newStore(t)
	doc := `ResourceType syncObject
ResourceType syncObject/messageTag
Resource /tags/42 syncObject/messageTag
`
	if _, err := s.LoadPTdf(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	if !s.Types().Has("syncObject/messageTag") {
		t.Error("type extension not applied")
	}
}

func TestLoadPTdfIdempotentEntities(t *testing.T) {
	s := newStore(t)
	doc := "Application a\nApplication a\nExecution e a\nExecution e a\nResource /r application\nResource /r application\n"
	stats, err := s.LoadPTdf(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 6 {
		t.Errorf("records = %d", stats.Records)
	}
	st := s.Stats()
	if st.Applications != 1 || st.Executions != 1 {
		t.Errorf("duplicate entities stored: %+v", st)
	}
}

func TestLoadStatsAdd(t *testing.T) {
	a := LoadStats{Records: 1, Results: 2, Resources: 3}
	a.Add(LoadStats{Records: 10, Results: 20, Resources: 30, Attributes: 5})
	if a.Records != 11 || a.Results != 22 || a.Resources != 33 || a.Attributes != 5 {
		t.Errorf("sum = %+v", a)
	}
}
