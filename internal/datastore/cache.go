package datastore

import (
	"sync"
	"sync/atomic"
)

// maxCacheEntries bounds the match cache. The GUI workload re-issues a
// handful of signatures per click, so the bound exists only to keep a
// pathological scripted workload from growing the map without limit;
// overflow drops the whole map (entries are cheap to recompute).
const maxCacheEntries = 1024

// queryCache memoizes pr-filter evaluation keyed by canonical filter
// signature and stamped with the store generation. Every store mutation
// bumps the generation, so a stale entry can never be served: the first
// lookup at a newer generation discards the previous generation's
// entries wholesale.
type queryCache struct {
	mu      sync.Mutex
	gen     uint64
	entries map[string]idSet

	hits   atomic.Uint64
	misses atomic.Uint64
}

func newQueryCache() *queryCache {
	return &queryCache{entries: make(map[string]idSet)}
}

// get returns the cached set for key at generation gen. Cached sets are
// shared: callers must treat them as immutable.
func (c *queryCache) get(gen uint64, key string) (idSet, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen != gen {
		c.gen = gen
		c.entries = make(map[string]idSet)
	}
	ids, ok := c.entries[key]
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return ids, ok
}

// put stores a set computed at generation gen unless the store has moved
// on since the computation started.
func (c *queryCache) put(gen uint64, key string, ids idSet) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen != gen {
		if c.gen > gen {
			return // computed against an older snapshot; do not poison
		}
		c.gen = gen
		c.entries = make(map[string]idSet)
	}
	if len(c.entries) >= maxCacheEntries {
		c.entries = make(map[string]idSet)
	}
	c.entries[key] = ids
}

// size reports the current number of cached entries.
func (c *queryCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
