package datastore

import (
	"fmt"
	"sort"
	"strconv"

	"perftrack/internal/reldb"
)

// MaxAttrDomain caps how many distinct values AttributeKeys samples per
// attribute. Distinct stays exact beyond the cap; only the Values sample
// is truncated, so high-cardinality attributes (timestamps, IDs) cannot
// bloat an attribute listing.
const MaxAttrDomain = 32

// AttrKeyInfo summarizes one attribute key as seen across the store: how
// many resources carry it, its effective value domain, and whether that
// domain is numeric. "Effective" follows the materializer's
// last-write-wins rule — when an attribute was set more than once on a
// resource, only the highest-rowid value counts.
type AttrKeyInfo struct {
	Name      string
	Resources int      // resources carrying the attribute
	Distinct  int      // distinct effective values (exact)
	Numeric   bool     // every effective value parses as a float
	Min, Max  float64  // value range; meaningful only when Numeric
	Values    []string // sorted sample of distinct values, ≤ MaxAttrDomain
}

// AttributeKeys enumerates attribute keys whose name starts with prefix
// (empty = all), with per-key domain statistics. One scan of the
// resource_attribute table; the diagnose subsystem and GET /v1/attributes
// use it to bound the predicate search space without touching resources.
func (s *Store) AttributeKeys(prefix string) ([]AttrKeyInfo, error) {
	raTab, ok := s.eng.Table("resource_attribute")
	if !ok {
		return nil, fmt.Errorf("datastore: no resource_attribute table")
	}
	type slot struct {
		rowID int64
		value string
	}
	type key struct {
		rid  int64
		name string
	}
	latest := make(map[key]slot)
	raTab.Scan(func(id int64, row reldb.Row) bool {
		name := row[2].Text()
		if len(name) < len(prefix) || name[:len(prefix)] != prefix {
			return true
		}
		k := key{row[1].Int64(), name}
		if c, ok := latest[k]; !ok || id > c.rowID {
			latest[k] = slot{id, row[3].Text()}
		}
		return true
	})
	domains := make(map[string]map[string]int)
	for k, c := range latest {
		d := domains[k.name]
		if d == nil {
			d = make(map[string]int)
			domains[k.name] = d
		}
		d[c.value]++
	}
	out := make([]AttrKeyInfo, 0, len(domains))
	for name, d := range domains {
		info := AttrKeyInfo{Name: name, Distinct: len(d), Numeric: true}
		seenNum := false
		for v, n := range d {
			info.Resources += n
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				info.Numeric = false
				continue
			}
			if !seenNum || f < info.Min {
				info.Min = f
			}
			if !seenNum || f > info.Max {
				info.Max = f
			}
			seenNum = true
		}
		if !info.Numeric {
			info.Min, info.Max = 0, 0
		}
		vals := make([]string, 0, len(d))
		for v := range d {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		if len(vals) > MaxAttrDomain {
			vals = vals[:MaxAttrDomain]
		}
		info.Values = vals
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// AttributeValues returns the effective value of one attribute for every
// resource that carries it, keyed by resource ID, from one scan of the
// resource_attribute (name, value) index. Last write wins, matching
// attrMatchIDs and resource materialization.
func (s *Store) AttributeValues(attr string) (map[int64]string, error) {
	raTab, ok := s.eng.Table("resource_attribute")
	if !ok {
		return nil, fmt.Errorf("datastore: no resource_attribute table")
	}
	type slot struct {
		rowID int64
		value string
	}
	latest := make(map[int64]slot)
	if err := raTab.IndexScan("resource_attribute_name", []reldb.Value{reldb.Str(attr)},
		func(id int64, row reldb.Row) bool {
			rid := row[1].Int64()
			if c, ok := latest[rid]; !ok || id > c.rowID {
				latest[rid] = slot{id, row[3].Text()}
			}
			return true
		}); err != nil {
		return nil, err
	}
	out := make(map[int64]string, len(latest))
	for rid, c := range latest {
		out[rid] = c.value
	}
	return out, nil
}

// ExecutionResourceIDs returns the sorted IDs of every resource in the
// execution's footprint: resources appearing in the contexts of its
// performance results, resources scoped to the execution itself,
// constraint partners of those (resource-valued attributes like the node
// a process ran on), and all of their ancestors. This is the resource set
// over which attribute predicates about the execution are evaluated.
func (s *Store) ExecutionResourceIDs(exec string) ([]int64, error) {
	s.mu.Lock()
	execID, ok := s.execIDs[exec]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("datastore: unknown execution %q: %w", exec, ErrNotFound)
	}
	// Results of the execution → foci → context resources. Each scan only
	// collects IDs; nesting engine calls inside a scan callback would
	// recursively lock the engine.
	prTab, _ := s.eng.Table("performance_result")
	var resultIDs []int64
	if err := prTab.IndexScan("performance_result_exec", []reldb.Value{reldb.Int(execID)},
		func(id int64, _ reldb.Row) bool {
			resultIDs = append(resultIDs, id)
			return true
		}); err != nil {
		return nil, err
	}
	rhfTab, _ := s.eng.Table("result_has_focus")
	var focusIDs []int64
	for _, rid := range resultIDs {
		if err := rhfTab.PKScan([]reldb.Value{reldb.Int(rid)},
			func(_ int64, row reldb.Row) bool {
				focusIDs = append(focusIDs, row[1].Int64())
				return true
			}); err != nil {
			return nil, err
		}
	}
	fhrTab, _ := s.eng.Table("focus_has_resource")
	var ids []int64
	for _, fid := range sortDedup(focusIDs) {
		if err := fhrTab.PKScan([]reldb.Value{reldb.Int(fid)},
			func(_ int64, row reldb.Row) bool {
				ids = append(ids, row[1].Int64())
				return true
			}); err != nil {
			return nil, err
		}
	}
	// Execution-scoped resources (the /execName hierarchy).
	riTab, _ := s.eng.Table("resource_item")
	if err := riTab.IndexScan("resource_item_exec", []reldb.Value{reldb.Int(execID)},
		func(id int64, _ reldb.Row) bool {
			ids = append(ids, id)
			return true
		}); err != nil {
		return nil, err
	}
	base := sortDedup(ids)
	// Constraint partners: attributes whose value is another resource.
	rcTab, _ := s.eng.Table("resource_constraint")
	var partners []int64
	for _, rid := range base {
		if err := rcTab.IndexScan("resource_constraint_r1", []reldb.Value{reldb.Int(rid)},
			func(_ int64, row reldb.Row) bool {
				partners = append(partners, row[2].Int64())
				return true
			}); err != nil {
			return nil, err
		}
	}
	full := append([]int64(base), partners...)
	withPartners := sortDedup(full)
	// Ancestors, so machine-level attributes (clock MHz on a processor's
	// machine) count toward executions that ran on any of its nodes.
	rhaTab, _ := s.eng.Table("resource_has_ancestor")
	var ancestors []int64
	for _, rid := range withPartners {
		if err := rhaTab.PKScan([]reldb.Value{reldb.Int(rid)},
			func(_ int64, row reldb.Row) bool {
				ancestors = append(ancestors, row[1].Int64())
				return true
			}); err != nil {
			return nil, err
		}
	}
	return sortDedup(append([]int64(withPartners), ancestors...)), nil
}

// ExecutionsOfResults maps performance-result IDs back to the sorted set
// of execution names that own them. Unknown result IDs are skipped.
func (s *Store) ExecutionsOfResults(ids []int64) ([]string, error) {
	prTab, ok := s.eng.Table("performance_result")
	if !ok {
		return nil, fmt.Errorf("datastore: no performance_result table")
	}
	execIDs := make(map[int64]bool)
	for _, id := range ids {
		row, ok := prTab.Get(id)
		if !ok {
			continue
		}
		execIDs[row[1].Int64()] = true
	}
	exTab, _ := s.eng.Table("execution")
	out := make([]string, 0, len(execIDs))
	for eid := range execIDs {
		row, ok := exTab.Get(eid)
		if !ok {
			return nil, fmt.Errorf("datastore: no execution id %d", eid)
		}
		out = append(out, row[1].Text())
	}
	sort.Strings(out)
	return out, nil
}
