package datastore

import (
	"fmt"
	"io"
	"os"

	"perftrack/internal/core"
	"perftrack/internal/ptdf"
)

// LoadStats summarizes one PTdf load, feeding the Table 1 statistics.
type LoadStats struct {
	Records     int
	Types       int
	Apps        int
	Executions  int
	Resources   int
	Attributes  int
	Constraints int
	Results     int
}

// Add accumulates another load's statistics.
func (ls *LoadStats) Add(o LoadStats) {
	ls.Records += o.Records
	ls.Types += o.Types
	ls.Apps += o.Apps
	ls.Executions += o.Executions
	ls.Resources += o.Resources
	ls.Attributes += o.Attributes
	ls.Constraints += o.Constraints
	ls.Results += o.Results
}

// LoadRecord applies one PTdf record to the store.
func (s *Store) LoadRecord(rec ptdf.Record) error {
	switch r := rec.(type) {
	case ptdf.ApplicationRec:
		_, err := s.AddApplication(r.Name)
		return err
	case ptdf.ResourceTypeRec:
		return s.AddResourceType(r.Type)
	case ptdf.ExecutionRec:
		_, err := s.AddExecution(r.Name, r.App)
		return err
	case ptdf.ResourceRec:
		_, err := s.AddResource(r.Name, r.Type, r.Exec)
		return err
	case ptdf.ResourceAttributeRec:
		if r.AttrType == "resource" {
			// Adding a resource-typed attribute is equivalent to adding a
			// resource constraint (Figure 6).
			return s.AddResourceConstraint(r.Resource, core.ResourceName(r.Value))
		}
		return s.SetResourceAttribute(r.Resource, r.Attr, r.Value)
	case ptdf.ResourceConstraintRec:
		return s.AddResourceConstraint(r.R1, r.R2)
	case ptdf.PerfResultRec:
		pr := &core.PerformanceResult{
			Execution: r.Exec,
			Metric:    r.Metric,
			Value:     r.Value,
			Units:     r.Units,
			Tool:      r.Tool,
			Contexts:  r.Contexts(),
		}
		_, err := s.AddPerfResult(pr)
		return err
	case ptdf.PerfHistogramRec:
		pr := &core.PerformanceResult{
			Execution: r.Exec,
			Metric:    r.Metric,
			Units:     r.Units,
			Tool:      r.Tool,
			Contexts:  r.Contexts(),
		}
		_, err := s.AddHistogramResult(pr, r.BinWidth, r.Values)
		return err
	default:
		return fmt.Errorf("datastore: unknown PTdf record %T", rec)
	}
}

// LoadPTdf streams a PTdf document into the store.
func (s *Store) LoadPTdf(r io.Reader) (LoadStats, error) {
	var stats LoadStats
	pr := ptdf.NewReader(r)
	for {
		rec, err := pr.Next()
		if err == io.EOF {
			return stats, nil
		}
		if err != nil {
			return stats, err
		}
		if err := s.LoadRecord(rec); err != nil {
			return stats, fmt.Errorf("datastore: record %d: %w", stats.Records+1, err)
		}
		stats.Records++
		switch rec.(type) {
		case ptdf.ResourceTypeRec:
			stats.Types++
		case ptdf.ApplicationRec:
			stats.Apps++
		case ptdf.ExecutionRec:
			stats.Executions++
		case ptdf.ResourceRec:
			stats.Resources++
		case ptdf.ResourceAttributeRec:
			stats.Attributes++
		case ptdf.ResourceConstraintRec:
			stats.Constraints++
		case ptdf.PerfResultRec, ptdf.PerfHistogramRec:
			stats.Results++
		}
	}
}

// LoadPTdfFile loads one PTdf file from disk.
func (s *Store) LoadPTdfFile(path string) (LoadStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return LoadStats{}, err
	}
	defer f.Close()
	stats, err := s.LoadPTdf(f)
	if err != nil {
		return stats, fmt.Errorf("%s: %w", path, err)
	}
	return stats, nil
}
