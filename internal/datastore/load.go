package datastore

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"

	"perftrack/internal/core"
	"perftrack/internal/obs"
	"perftrack/internal/ptdf"
	"perftrack/internal/reldb"
)

// LoadStats summarizes one PTdf load, feeding the Table 1 statistics.
type LoadStats struct {
	Records     int
	Types       int
	Apps        int
	Executions  int
	Resources   int
	Attributes  int
	Constraints int
	Results     int
}

// Add accumulates another load's statistics.
func (ls *LoadStats) Add(o LoadStats) {
	ls.Records += o.Records
	ls.Types += o.Types
	ls.Apps += o.Apps
	ls.Executions += o.Executions
	ls.Resources += o.Resources
	ls.Attributes += o.Attributes
	ls.Constraints += o.Constraints
	ls.Results += o.Results
}

// LoadRecord applies one PTdf record to the store: a one-record batch.
func (s *Store) LoadRecord(rec ptdf.Record) error {
	b := s.NewBatch()
	b.Stage(rec)
	_, err := b.Commit()
	return err
}

// loadRecordLocked applies one PTdf record. Callers hold s.mu (and s.wmu
// when the record is part of a multi-record load).
func (s *Store) loadRecordLocked(rec ptdf.Record) error {
	switch r := rec.(type) {
	case ptdf.ApplicationRec:
		_, err := s.addApplicationLocked(r.Name)
		return err
	case ptdf.ResourceTypeRec:
		return s.addResourceTypeLocked(r.Type)
	case ptdf.ExecutionRec:
		_, err := s.addExecutionLocked(r.Name, r.App)
		return err
	case ptdf.ResourceRec:
		_, err := s.addResourceLocked(r.Name, r.Type, r.Exec)
		return err
	case ptdf.ResourceAttributeRec:
		if r.AttrType == "resource" {
			// Adding a resource-typed attribute is equivalent to adding a
			// resource constraint (Figure 6).
			return s.addResourceConstraintLocked(r.Resource, core.ResourceName(r.Value))
		}
		return s.setResourceAttributeLocked(r.Resource, r.Attr, r.Value)
	case ptdf.ResourceConstraintRec:
		return s.addResourceConstraintLocked(r.R1, r.R2)
	case ptdf.PerfResultRec:
		pr := &core.PerformanceResult{
			Execution: r.Exec,
			Metric:    r.Metric,
			Value:     r.Value,
			Units:     r.Units,
			Tool:      r.Tool,
			Contexts:  r.Contexts(),
		}
		_, err := s.addPerfResultLocked(pr)
		return err
	case ptdf.PerfHistogramRec:
		pr := &core.PerformanceResult{
			Execution: r.Exec,
			Metric:    r.Metric,
			Units:     r.Units,
			Tool:      r.Tool,
			Contexts:  r.Contexts(),
		}
		_, err := s.addHistogramResultLocked(pr, r.BinWidth, r.Values)
		return err
	default:
		return fmt.Errorf("datastore: unknown PTdf record %T: %w", rec, ErrBadSpec)
	}
}

// LoadPTdf streams a PTdf document into the store atomically. The
// document decodes into a staged Batch outside every lock — a slow or
// partially-bad document costs nothing under the writer mutex — then
// commits in one critical section: one engine transaction, one
// generation bump, one WAL flush. A bad record (decode or apply) leaves
// no trace of the document behind; the error names the failing record.
// Concurrent loads decode in parallel and serialize only at commit.
func (s *Store) LoadPTdf(r io.Reader) (LoadStats, error) {
	return s.LoadPTdfCtx(context.Background(), r)
}

// LoadPTdfCtx is LoadPTdf under a context: when a trace rides ctx, the
// decode and commit phases record datastore.load.decode and
// datastore.batch.commit spans in the request's span tree.
func (s *Store) LoadPTdfCtx(ctx context.Context, r io.Reader) (LoadStats, error) {
	b := s.NewBatch()
	_, dspan := obs.StartSpan(ctx, "datastore.load.decode")
	pr := ptdf.NewReader(r)
	for {
		rec, err := pr.Next()
		if err == io.EOF {
			dspan.Annotate("records", strconv.Itoa(b.Len()))
			dspan.End()
			return b.CommitCtx(ctx)
		}
		if err != nil {
			dspan.Annotate("outcome", "decode-error")
			dspan.End()
			b.Rollback()
			return LoadStats{}, fmt.Errorf("%w: %w", err, ErrBadSpec)
		}
		b.Stage(rec)
	}
}

// rollbackLoad undoes a failed load's engine mutations and rebuilds the
// in-memory caches, which may hold IDs for rows the rollback removed.
func (s *Store) rollbackLoad(tx *reldb.Tx, cause error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := tx.Rollback(); err != nil {
		return errors.Join(cause, fmt.Errorf("datastore: rollback: %w", err))
	}
	if err := s.resetCachesLocked(); err != nil {
		return errors.Join(cause, fmt.Errorf("datastore: cache rebuild after rollback: %w", err))
	}
	return cause
}

// LoadPTdfFile loads one PTdf file from disk. A parse or load error rolls
// back the whole file.
func (s *Store) LoadPTdfFile(path string) (LoadStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return LoadStats{}, err
	}
	defer f.Close()
	stats, err := s.LoadPTdf(f)
	if err != nil {
		return stats, fmt.Errorf("%s: %w", path, err)
	}
	return stats, nil
}
