package datastore

import (
	"fmt"
	"sort"

	"perftrack/internal/core"
	"perftrack/internal/reldb"
)

// ExecutionDetail is the §3.3 "details of individual executions" report.
type ExecutionDetail struct {
	Name        string
	Application string
	Attributes  map[string]string // attributes of the execution resource
	Results     int
	Metrics     []string
	Tools       []string
	Resources   int // execution-scoped resources
}

// ExecutionDetail assembles the report for one execution.
func (s *Store) ExecutionDetail(name string) (*ExecutionDetail, error) {
	s.mu.Lock()
	execID, ok := s.execIDs[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("datastore: unknown execution %q: %w", name, ErrNotFound)
	}
	d := &ExecutionDetail{Name: name, Attributes: map[string]string{}}

	execTab, ok := s.eng.Table("execution")
	if !ok {
		return nil, fmt.Errorf("datastore: no execution table: %w", ErrNotFound)
	}
	// The name cache and the table can disagree during a racing delete;
	// a missed Get is "not found", not a nil-row panic.
	row, ok := execTab.Get(execID)
	if !ok {
		return nil, fmt.Errorf("datastore: unknown execution %q: %w", name, ErrNotFound)
	}
	app, err := s.nameOf("application", row[2].Int64())
	if err != nil {
		return nil, err
	}
	d.Application = app

	// Execution-resource attributes, when a resource named /<exec> exists.
	if res, err := s.ResourceByName(core.ResourceName("/" + name)); err == nil {
		d.Attributes = res.Attributes
	}

	// Results, metrics, tools.
	prTab, _ := s.eng.Table("performance_result")
	metricSet := map[int64]bool{}
	toolSet := map[int64]bool{}
	if err := prTab.IndexScan("performance_result_exec", []reldb.Value{reldb.Int(execID)},
		func(_ int64, prow reldb.Row) bool {
			d.Results++
			metricSet[prow[2].Int64()] = true
			toolSet[prow[3].Int64()] = true
			return true
		}); err != nil {
		return nil, err
	}
	// Resolve names through one prefetched dictionary per table instead
	// of a locked point lookup per distinct ID.
	metricNames, err := s.dictNames("metric")
	if err != nil {
		return nil, err
	}
	toolNames, err := s.dictNames("performance_tool")
	if err != nil {
		return nil, err
	}
	for id := range metricSet {
		n, ok := metricNames[id]
		if !ok {
			return nil, fmt.Errorf("datastore: no metric id %d", id)
		}
		d.Metrics = append(d.Metrics, n)
	}
	for id := range toolSet {
		n, ok := toolNames[id]
		if !ok {
			return nil, fmt.Errorf("datastore: no performance_tool id %d", id)
		}
		d.Tools = append(d.Tools, n)
	}
	sort.Strings(d.Metrics)
	sort.Strings(d.Tools)

	// Execution-scoped resources.
	riTab, _ := s.eng.Table("resource_item")
	if err := riTab.IndexScan("resource_item_exec", []reldb.Value{reldb.Int(execID)},
		func(int64, reldb.Row) bool {
			d.Resources++
			return true
		}); err != nil {
		return nil, err
	}
	return d, nil
}

// DeleteExecution removes one execution and everything only it owns:
// its performance results (with their focus links and histograms), its
// execution-scoped resources (with attributes, constraints, closure rows,
// and focus links), and any foci left unreferenced. Shared resources
// (machines, code, applications) are untouched.
func (s *Store) DeleteExecution(name string) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	defer s.bumpGen()
	s.mu.Lock()
	defer s.mu.Unlock()
	execID, ok := s.execIDs[name]
	if !ok {
		return fmt.Errorf("datastore: unknown execution %q: %w", name, ErrNotFound)
	}

	// 1. Results of the execution, plus their focus links and histograms.
	prTab, _ := s.eng.Table("performance_result")
	var resultIDs []int64
	if err := prTab.IndexScan("performance_result_exec", []reldb.Value{reldb.Int(execID)},
		func(id int64, _ reldb.Row) bool {
			resultIDs = append(resultIDs, id)
			return true
		}); err != nil {
		return err
	}
	rhfTab, _ := s.eng.Table("result_has_focus")
	rhTab, _ := s.eng.Table("result_histogram")
	touchedFoci := map[int64]bool{}
	for _, rid := range resultIDs {
		var linkIDs []int64
		if err := rhfTab.PKScan([]reldb.Value{reldb.Int(rid)}, func(lid int64, lrow reldb.Row) bool {
			linkIDs = append(linkIDs, lid)
			touchedFoci[lrow[1].Int64()] = true
			return true
		}); err != nil {
			return err
		}
		for _, lid := range linkIDs {
			if err := s.deleteRow("result_has_focus", lid); err != nil {
				return err
			}
		}
		if _, hid, found := rhTab.GetByPK(reldb.Int(rid)); found {
			if err := s.deleteRow("result_histogram", hid); err != nil {
				return err
			}
		}
		if err := s.deleteRow("performance_result", rid); err != nil {
			return err
		}
	}

	// 2. Execution-scoped resources, deepest first so children go before
	// parents (foreign keys and closure rows reference upward).
	riTab, _ := s.eng.Table("resource_item")
	type resEntry struct {
		id   int64
		name core.ResourceName
	}
	var resources []resEntry
	if err := riTab.IndexScan("resource_item_exec", []reldb.Value{reldb.Int(execID)},
		func(id int64, row reldb.Row) bool {
			resources = append(resources, resEntry{id: id, name: core.ResourceName(row[1].Text())})
			return true
		}); err != nil {
		return err
	}
	sort.Slice(resources, func(i, j int) bool {
		return resources[i].name.Depth() > resources[j].name.Depth()
	})
	raTab, _ := s.eng.Table("resource_attribute")
	rcTab, _ := s.eng.Table("resource_constraint")
	rhaTab, _ := s.eng.Table("resource_has_ancestor")
	rhdTab, _ := s.eng.Table("resource_has_descendant")
	fhrTab, _ := s.eng.Table("focus_has_resource")
	for _, re := range resources {
		// Attributes.
		if err := s.deleteMatching(raTab, "resource_attribute", "resource_attribute_res",
			[]reldb.Value{reldb.Int(re.id)}); err != nil {
			return err
		}
		// Constraints in either direction.
		if err := s.deleteMatching(rcTab, "resource_constraint", "resource_constraint_r1",
			[]reldb.Value{reldb.Int(re.id)}); err != nil {
			return err
		}
		if err := s.deleteMatching(rcTab, "resource_constraint", "resource_constraint_r2",
			[]reldb.Value{reldb.Int(re.id)}); err != nil {
			return err
		}
		// Closure rows, both roles.
		var closureIDs []int64
		if err := rhaTab.PKScan([]reldb.Value{reldb.Int(re.id)}, func(id int64, _ reldb.Row) bool {
			closureIDs = append(closureIDs, id)
			return true
		}); err != nil {
			return err
		}
		for _, id := range closureIDs {
			if err := s.deleteRow("resource_has_ancestor", id); err != nil {
				return err
			}
		}
		if err := s.deleteMatching(rhaTab, "resource_has_ancestor", "rha_ancestor",
			[]reldb.Value{reldb.Int(re.id)}); err != nil {
			return err
		}
		closureIDs = closureIDs[:0]
		if err := rhdTab.PKScan([]reldb.Value{reldb.Int(re.id)}, func(id int64, _ reldb.Row) bool {
			closureIDs = append(closureIDs, id)
			return true
		}); err != nil {
			return err
		}
		for _, id := range closureIDs {
			if err := s.deleteRow("resource_has_descendant", id); err != nil {
				return err
			}
		}
		if err := s.deleteMatching(rhdTab, "resource_has_descendant", "rhd_descendant",
			[]reldb.Value{reldb.Int(re.id)}); err != nil {
			return err
		}
		// Focus membership: remove the focus rows wholesale (any focus
		// containing a per-execution resource exists only for this
		// execution's results, all deleted above).
		var focusIDs []int64
		if err := fhrTab.IndexScan("fhr_resource", []reldb.Value{reldb.Int(re.id)},
			func(_ int64, frow reldb.Row) bool {
				focusIDs = append(focusIDs, frow[0].Int64())
				return true
			}); err != nil {
			return err
		}
		for _, fid := range focusIDs {
			if err := s.deleteFocusLocked(fid); err != nil {
				return err
			}
		}
		if err := s.deleteRow("resource_item", re.id); err != nil {
			return err
		}
		delete(s.resIDs, re.name)
		delete(s.resNames, re.id)
	}

	// 3. Foci touched by the execution's results that are now orphaned.
	for fid := range touchedFoci {
		orphaned := true
		if err := rhfTab.IndexScan("rhf_focus", []reldb.Value{reldb.Int(fid)},
			func(int64, reldb.Row) bool {
				orphaned = false
				return false
			}); err != nil {
			return err
		}
		if orphaned {
			if err := s.deleteFocusLocked(fid); err != nil {
				return err
			}
		}
	}

	// 4. The execution row itself.
	if err := s.deleteRow("execution", execID); err != nil {
		return err
	}
	delete(s.execIDs, name)
	return nil
}

// deleteMatching removes every row of a table whose index prefix matches.
func (s *Store) deleteMatching(tab *reldb.Table, table, index string, prefix []reldb.Value) error {
	var ids []int64
	if err := tab.IndexScan(index, prefix, func(id int64, _ reldb.Row) bool {
		ids = append(ids, id)
		return true
	}); err != nil {
		return err
	}
	for _, id := range ids {
		if err := s.deleteRow(table, id); err != nil {
			return err
		}
	}
	return nil
}

// deleteFocusLocked removes a focus, its resource links, and any result
// links referencing it, then drops the signature cache entry.
func (s *Store) deleteFocusLocked(fid int64) error {
	fTab, _ := s.eng.Table("focus")
	row, ok := fTab.Get(fid)
	if !ok {
		return nil // already removed via another resource
	}
	sig := row[2].Text()
	fhrTab, _ := s.eng.Table("focus_has_resource")
	var linkIDs []int64
	if err := fhrTab.PKScan([]reldb.Value{reldb.Int(fid)}, func(id int64, _ reldb.Row) bool {
		linkIDs = append(linkIDs, id)
		return true
	}); err != nil {
		return err
	}
	for _, id := range linkIDs {
		if err := s.deleteRow("focus_has_resource", id); err != nil {
			return err
		}
	}
	rhfTab, _ := s.eng.Table("result_has_focus")
	linkIDs = linkIDs[:0]
	if err := rhfTab.IndexScan("rhf_focus", []reldb.Value{reldb.Int(fid)},
		func(id int64, _ reldb.Row) bool {
			linkIDs = append(linkIDs, id)
			return true
		}); err != nil {
		return err
	}
	for _, id := range linkIDs {
		if err := s.deleteRow("result_has_focus", id); err != nil {
			return err
		}
	}
	if err := s.deleteRow("focus", fid); err != nil {
		return err
	}
	delete(s.focusIDs, sig)
	return nil
}

// deleteRow deletes one engine row. The engine takes its own lock; lock
// ordering is always store → engine.
func (s *Store) deleteRow(table string, id int64) error {
	return s.eng.Delete(table, id)
}
