package datastore

import (
	"testing"

	"perftrack/internal/core"
)

func TestExecutionDetail(t *testing.T) {
	s := seedStudy(t)
	s.AddResource("/irs-frost", "execution", "irs-frost")
	s.SetResourceAttribute("/irs-frost", "nprocs", "32")

	d, err := s.ExecutionDetail("irs-frost")
	if err != nil {
		t.Fatal(err)
	}
	if d.Application != "irs" {
		t.Errorf("app = %q", d.Application)
	}
	if d.Results != 3 {
		t.Errorf("results = %d", d.Results)
	}
	if len(d.Metrics) != 3 || d.Metrics[0] != "cpu time" {
		t.Errorf("metrics = %v", d.Metrics)
	}
	if len(d.Tools) != 1 || d.Tools[0] != "test" {
		t.Errorf("tools = %v", d.Tools)
	}
	if d.Attributes["nprocs"] != "32" {
		t.Errorf("attributes = %v", d.Attributes)
	}
	if d.Resources != 1 {
		t.Errorf("exec-scoped resources = %d", d.Resources)
	}
	if _, err := s.ExecutionDetail("nosuch"); err == nil {
		t.Error("unknown execution accepted")
	}
}

func TestDeleteExecutionCascades(t *testing.T) {
	s := seedStudy(t)
	// Give irs-frost execution-scoped resources with attributes,
	// constraints, and focus membership.
	s.AddResource("/irs-frost", "execution", "irs-frost")
	s.AddResource("/irs-frost/p0", "execution/process", "irs-frost")
	s.SetResourceAttribute("/irs-frost/p0", "rank", "0")
	s.AddResourceConstraint("/irs-frost/p0", "/GF/Frost/batch/n1/p0")
	addResult(t, s, "irs-frost", "proc wall", 1.5, "/irs", "/irs-frost/p0")

	before := s.Stats()
	if err := s.DeleteExecution("irs-frost"); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()

	// Execution gone; its results gone; other execution untouched.
	if after.Executions != before.Executions-1 {
		t.Errorf("executions %d -> %d", before.Executions, after.Executions)
	}
	if after.Results != 1 { // only irs-mcr's wall time remains
		t.Errorf("results = %d", after.Results)
	}
	if s.HasResource("/irs-frost/p0") || s.HasResource("/irs-frost") {
		t.Error("execution-scoped resources survive")
	}
	// Shared resources survive.
	if !s.HasResource("/irs") || !s.HasResource("/GF/Frost/batch/n1/p0") {
		t.Error("shared resources deleted")
	}
	// Remaining execution still queryable.
	fam, _ := s.ApplyFilter(core.ResourceFilter{Name: "/GM/MCR", Include: core.IncludeDescendants})
	n, err := s.CountFamilyMatches(fam)
	if err != nil || n != 1 {
		t.Errorf("surviving matches = %d, %v", n, err)
	}
	// Deleting again fails cleanly.
	if err := s.DeleteExecution("irs-frost"); err == nil {
		t.Error("double delete accepted")
	}
}

func TestDeleteExecutionRemovesOrphanedFoci(t *testing.T) {
	s := newStore(t)
	s.AddResource("/app", "application", "")
	s.AddExecution("e1", "app")
	s.AddExecution("e2", "app")
	// e1 and e2 share a context {app}; deleting e1 must keep the focus.
	addResult(t, s, "e1", "m", 1, "/app")
	addResult(t, s, "e2", "m", 2, "/app")
	fTab, _ := s.Engine().Table("focus")
	if fTab.Len() != 1 {
		t.Fatalf("foci = %d", fTab.Len())
	}
	if err := s.DeleteExecution("e1"); err != nil {
		t.Fatal(err)
	}
	if fTab.Len() != 1 {
		t.Errorf("shared focus deleted: foci = %d", fTab.Len())
	}
	// Now delete e2: the focus becomes orphaned and must go.
	if err := s.DeleteExecution("e2"); err != nil {
		t.Fatal(err)
	}
	if fTab.Len() != 0 {
		t.Errorf("orphaned focus survives: foci = %d", fTab.Len())
	}
	fhrTab, _ := s.Engine().Table("focus_has_resource")
	if fhrTab.Len() != 0 {
		t.Errorf("focus links survive: %d", fhrTab.Len())
	}
}

func TestDeleteExecutionWithHistogram(t *testing.T) {
	s := newStore(t)
	s.AddResource("/app", "application", "")
	s.AddExecution("e1", "app")
	if _, err := s.AddHistogramResult(&core.PerformanceResult{
		Execution: "e1", Metric: "m", Tool: "t", Units: "u",
		Contexts: []core.Context{core.NewContext("/app")},
	}, 0.2, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteExecution("e1"); err != nil {
		t.Fatal(err)
	}
	if s.HistogramCount() != 0 {
		t.Errorf("histograms survive: %d", s.HistogramCount())
	}
}

func TestDeleteExecutionReloadable(t *testing.T) {
	// After deleting, the same execution can be reloaded cleanly — the
	// workflow for replacing bad data.
	s := newStore(t)
	s.AddResource("/app", "application", "")
	s.AddExecution("e1", "app")
	s.AddResource("/e1", "execution", "e1")
	addResult(t, s, "e1", "m", 1, "/app", "/e1")
	if err := s.DeleteExecution("e1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddExecution("e1", "app"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddResource("/e1", "execution", "e1"); err != nil {
		t.Fatal(err)
	}
	addResult(t, s, "e1", "m", 2, "/app", "/e1")
	ids, err := s.MatchingResultIDs(core.PRFilter{})
	if err != nil || len(ids) != 1 {
		t.Fatalf("ids = %v, %v", ids, err)
	}
	pr, _ := s.ResultByID(ids[0])
	if pr.Value != 2 {
		t.Errorf("reloaded value = %v", pr.Value)
	}
}
