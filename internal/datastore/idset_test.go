package datastore

import (
	"math/rand"
	"sort"
	"testing"
)

func refIntersect(a, b idSet) idSet {
	in := make(map[int64]bool, len(a))
	for _, v := range a {
		in[v] = true
	}
	var out idSet
	for _, v := range b {
		if in[v] {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalSets(a, b idSet) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSortDedup(t *testing.T) {
	cases := []struct {
		in, want []int64
	}{
		{nil, nil},
		{[]int64{5}, []int64{5}},
		{[]int64{3, 1, 2}, []int64{1, 2, 3}},
		{[]int64{2, 2, 2}, []int64{2}},
		{[]int64{9, 1, 9, 1, 5}, []int64{1, 5, 9}},
	}
	for _, c := range cases {
		got := sortDedup(append([]int64(nil), c.in...))
		if !equalSets(got, c.want) {
			t.Errorf("sortDedup(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestGallopSearch(t *testing.T) {
	s := idSet{2, 4, 6, 8, 10, 12, 14, 16, 18, 20}
	for v := int64(0); v <= 22; v++ {
		want := sort.Search(len(s), func(i int) bool { return s[i] >= v })
		if got := gallopSearch(s, v); got != want {
			t.Errorf("gallopSearch(%v) = %d, want %d", v, got, want)
		}
	}
	if got := gallopSearch(nil, 1); got != 0 {
		t.Errorf("gallopSearch(empty) = %d", got)
	}
}

func TestIntersectEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		a, b idSet
		want idSet
	}{
		{"both-empty", nil, nil, nil},
		{"one-empty", idSet{1, 2}, nil, nil},
		{"disjoint", idSet{1, 3, 5}, idSet{2, 4, 6}, nil},
		{"identical", idSet{1, 2, 3}, idSet{1, 2, 3}, idSet{1, 2, 3}},
		{"subset", idSet{2, 4}, idSet{1, 2, 3, 4, 5}, idSet{2, 4}},
		{"tails", idSet{1, 100}, idSet{100, 200}, idSet{100}},
	}
	for _, c := range cases {
		if got := c.a.intersect(c.b); !equalSets(got, c.want) {
			t.Errorf("%s: %v ∩ %v = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
		if got := c.b.intersect(c.a); !equalSets(got, c.want) {
			t.Errorf("%s (swapped): got %v, want %v", c.name, got, c.want)
		}
	}
}

// TestIntersectRandomized checks the merge and galloping paths against a
// map-based reference, including heavily skewed sizes that force the
// gallop path.
func TestIntersectRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sizes := [][2]int{{10, 10}, {100, 100}, {5, 1000}, {1, 10000}, {0, 50}, {300, 3000}}
	for _, sz := range sizes {
		for trial := 0; trial < 20; trial++ {
			mk := func(n int) idSet {
				ids := make([]int64, n)
				for i := range ids {
					ids[i] = int64(rng.Intn(4 * (n + 10)))
				}
				return sortDedup(ids)
			}
			a, b := mk(sz[0]), mk(sz[1])
			want := refIntersect(a, b)
			if got := a.intersect(b); !equalSets(got, want) {
				t.Fatalf("sizes %v trial %d: got %v want %v (a=%v b=%v)", sz, trial, got, want, a, b)
			}
		}
	}
}

func TestIntersectAll(t *testing.T) {
	if got := intersectAll(nil); got != nil {
		t.Errorf("intersectAll(nil) = %v", got)
	}
	one := idSet{1, 2, 3}
	if got := intersectAll([]idSet{one}); !equalSets(got, one) {
		t.Errorf("single set = %v", got)
	}
	got := intersectAll([]idSet{
		{1, 2, 3, 4, 5, 6},
		{2, 4, 6, 8},
		{4, 6, 10},
	})
	if !equalSets(got, idSet{4, 6}) {
		t.Errorf("three-way = %v, want [4 6]", got)
	}
	// An empty set anywhere empties the result without touching the rest.
	got = intersectAll([]idSet{{1, 2}, nil, {2, 3}})
	if len(got) != 0 {
		t.Errorf("with empty member = %v, want empty", got)
	}
}
