package datastore

import (
	"math"
	"strings"
	"testing"

	"perftrack/internal/core"
)

func histStore(t *testing.T) *Store {
	t.Helper()
	s := newStore(t)
	if _, err := s.AddResource("/app", "application", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddExecution("e1", "app"); err != nil {
		t.Fatal(err)
	}
	return s
}

func histResult() *core.PerformanceResult {
	return &core.PerformanceResult{
		Execution: "e1", Metric: "cpu_inclusive", Units: "units/second",
		Tool:     "Paradyn",
		Contexts: []core.Context{core.NewContext("/app")},
	}
}

func TestAddHistogramResultStoresSummaryAndBins(t *testing.T) {
	s := histStore(t)
	values := []float64{math.NaN(), 2, 4, math.NaN(), 6}
	id, err := s.AddHistogramResult(histResult(), 0.2, values)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := s.ResultByID(id)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Value != 4 { // mean of 2, 4, 6
		t.Errorf("summary scalar = %v, want 4", pr.Value)
	}
	bw, bins, ok, err := s.HistogramOf(id)
	if err != nil || !ok {
		t.Fatalf("HistogramOf: ok=%v err=%v", ok, err)
	}
	if bw != 0.2 || len(bins) != 5 {
		t.Errorf("bw=%v bins=%v", bw, bins)
	}
	if !math.IsNaN(bins[0]) || bins[2] != 4 {
		t.Errorf("bins = %v", bins)
	}
	if s.HistogramCount() != 1 {
		t.Errorf("HistogramCount = %d", s.HistogramCount())
	}
}

func TestHistogramOfScalarResult(t *testing.T) {
	s := histStore(t)
	id := addResult(t, s, "e1", "plain", 1, "/app")
	_, _, ok, err := s.HistogramOf(id)
	if err != nil || ok {
		t.Errorf("scalar result reported as histogram: ok=%v err=%v", ok, err)
	}
}

func TestAddHistogramResultErrors(t *testing.T) {
	s := histStore(t)
	if _, err := s.AddHistogramResult(histResult(), 0, []float64{1}); err == nil {
		t.Error("zero bin width accepted")
	}
	if _, err := s.AddHistogramResult(histResult(), 0.2, nil); err == nil {
		t.Error("empty histogram accepted")
	}
	if _, err := s.AddHistogramResult(histResult(), 0.2, []float64{math.NaN()}); err == nil {
		t.Error("all-nan histogram accepted")
	}
}

func TestHistogramResultQueryableByFilter(t *testing.T) {
	s := histStore(t)
	if _, err := s.AddHistogramResult(histResult(), 0.2, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	fam, err := s.ApplyFilter(core.ResourceFilter{Type: "application"})
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.CountMatches(core.PRFilter{Families: []core.Family{fam}})
	if err != nil || n != 1 {
		t.Errorf("matches = %d, %v", n, err)
	}
}

func TestLoadPTdfHistogramRecord(t *testing.T) {
	s := newStore(t)
	doc := `Application app
Execution e1 app
Resource /app application
PerfHistogram e1 /app(primary) Paradyn cpu 0.2 "units/second" nan,1.5,2.5
`
	stats, err := s.LoadPTdf(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Results != 1 {
		t.Errorf("stats = %+v", stats)
	}
	ids, _ := s.MatchingResultIDs(core.PRFilter{})
	if len(ids) != 1 {
		t.Fatalf("ids = %v", ids)
	}
	pr, err := s.ResultByID(ids[0])
	if err != nil || pr.Value != 2 {
		t.Errorf("summary = %v, %v", pr, err)
	}
	_, bins, ok, err := s.HistogramOf(ids[0])
	if err != nil || !ok || len(bins) != 3 {
		t.Errorf("bins = %v ok=%v err=%v", bins, ok, err)
	}
}

func TestHistogramSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	func() {
		fe, err := openEngine(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer fe.Close()
		s, err := Open(fe)
		if err != nil {
			t.Fatal(err)
		}
		s.AddResource("/app", "application", "")
		s.AddExecution("e1", "app")
		if _, err := s.AddHistogramResult(&core.PerformanceResult{
			Execution: "e1", Metric: "m", Tool: "t", Units: "u",
			Contexts: []core.Context{core.NewContext("/app")},
		}, 0.5, []float64{1, math.NaN(), 3}); err != nil {
			t.Fatal(err)
		}
	}()
	fe, err := openEngine(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()
	s, err := Open(fe)
	if err != nil {
		t.Fatal(err)
	}
	if s.HistogramCount() != 1 {
		t.Fatalf("histograms after reopen = %d", s.HistogramCount())
	}
	ids, _ := s.MatchingResultIDs(core.PRFilter{})
	bw, bins, ok, err := s.HistogramOf(ids[0])
	if err != nil || !ok || bw != 0.5 || len(bins) != 3 || !math.IsNaN(bins[1]) {
		t.Errorf("after reopen: bw=%v bins=%v ok=%v err=%v", bw, bins, ok, err)
	}
}
