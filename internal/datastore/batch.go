package datastore

import (
	"context"
	"errors"
	"fmt"
	"strconv"

	"perftrack/internal/obs"
	"perftrack/internal/ptdf"
)

// ErrBatchDone is returned by operations on a committed or rolled-back
// batch.
var ErrBatchDone = errors.New("datastore: batch already finished")

// Batch is the store's multi-record write unit: begin with NewBatch,
// stage any number of PTdf records — no lock is taken and the store is
// not touched — then Commit applies them all in one critical section.
// Staging is therefore free to run concurrently with readers, other
// stagers, and even other commits; only Commit serializes on the writer
// mutex.
//
// Commit is transactional per batch: every record applies inside one
// engine transaction, a bad record rolls the whole batch back (durably —
// the WAL carries the compensation records), the store generation bumps
// exactly once, and on a durable engine the WAL is flushed exactly once.
// This is the write API every multi-record path sits on: LoadPTdf stages
// one document per batch, and BulkLoad pipelines many batches from
// parallel decoders into a single committer.
type Batch struct {
	s     *Store
	recs  []ptdf.Record
	stats LoadStats
	done  bool
}

// NewBatch begins an empty batch against the store.
func (s *Store) NewBatch() *Batch {
	return &Batch{s: s}
}

// Stage buffers one record for the next Commit, updating the staged
// statistics. It takes no locks and cannot fail: validation happens at
// commit time, inside the transaction.
func (b *Batch) Stage(rec ptdf.Record) {
	b.recs = append(b.recs, rec)
	b.stats.Records++
	switch rec.(type) {
	case ptdf.ResourceTypeRec:
		b.stats.Types++
	case ptdf.ApplicationRec:
		b.stats.Apps++
	case ptdf.ExecutionRec:
		b.stats.Executions++
	case ptdf.ResourceRec:
		b.stats.Resources++
	case ptdf.ResourceAttributeRec:
		b.stats.Attributes++
	case ptdf.ResourceConstraintRec:
		b.stats.Constraints++
	case ptdf.PerfResultRec, ptdf.PerfHistogramRec:
		b.stats.Results++
	}
}

// Len reports the number of staged records.
func (b *Batch) Len() int { return len(b.recs) }

// Stats reports the statistics of the records staged so far.
func (b *Batch) Stats() LoadStats { return b.stats }

// walBatcher is implemented by engines (reldb.FileEngine) that can defer
// per-mutation WAL flushing to a single end-of-batch flush.
type walBatcher interface {
	BeginWALBatch()
	EndWALBatch() error
}

// Commit applies every staged record in order inside one writer critical
// section: one engine transaction, one generation bump, and — on a
// durable engine — one WAL flush. On error nothing of the batch remains
// (the engine transaction rolls back and the in-memory caches are
// rebuilt) and the error names the failing record.
func (b *Batch) Commit() (LoadStats, error) {
	return b.CommitCtx(context.Background())
}

// CommitCtx is Commit under a context: when a trace rides ctx, the
// commit records a datastore.batch.commit span (annotated with the
// record count) and the WAL group flush its own datastore.wal.flush
// child. The context carries telemetry only — commit is not cancelable
// midway, by design: a batch either fully applies or fully rolls back.
func (b *Batch) CommitCtx(ctx context.Context) (LoadStats, error) {
	if b.done {
		return LoadStats{}, ErrBatchDone
	}
	b.done = true
	if len(b.recs) == 0 {
		return LoadStats{}, nil
	}
	s := b.s
	ctx, span := obs.StartSpan(ctx, "datastore.batch.commit")
	span.Annotate("records", strconv.Itoa(len(b.recs)))
	defer span.End()
	s.wmu.Lock()
	defer s.wmu.Unlock()
	defer s.bumpGen()

	wb, _ := s.eng.(walBatcher)
	if wb != nil {
		wb.BeginWALBatch()
	}
	flush := func(err error) error {
		if wb == nil {
			return err
		}
		_, fspan := obs.StartSpan(ctx, "datastore.wal.flush")
		ferr := wb.EndWALBatch()
		fspan.End()
		s.tel.walFlushes.Add(1)
		if ferr != nil {
			return errors.Join(err, fmt.Errorf("datastore: WAL flush: %w", ferr))
		}
		return err
	}

	tx := s.eng.Begin()
	s.mu.Lock()
	s.ins = tx
	var applyErr error
	for i, rec := range b.recs {
		if err := s.loadRecordLocked(rec); err != nil {
			if len(b.recs) > 1 {
				err = fmt.Errorf("datastore: record %d: %w", i+1, err)
			}
			applyErr = err
			break
		}
	}
	s.ins = nil
	s.mu.Unlock()

	if applyErr != nil {
		// rollbackLoad logs compensation records; the deferred flush below
		// makes the rollback durable.
		s.tel.batchRollbacks.Add(1)
		span.Annotate("outcome", "rollback")
		return LoadStats{}, flush(s.rollbackLoad(tx, applyErr))
	}
	if err := tx.Commit(); err != nil {
		s.tel.batchRollbacks.Add(1)
		span.Annotate("outcome", "rollback")
		return LoadStats{}, flush(err)
	}
	// Refresh the planner statistics inside the still-open WAL batch so
	// they ride the same group flush as the data. Failure is advisory —
	// the batch is committed; the planner just keeps its previous
	// estimates until the next commit.
	if err := s.persistStatistics(); err != nil {
		s.tel.statsRefreshErrors.Add(1)
	} else {
		s.tel.statsRefreshes.Add(1)
	}
	if err := flush(nil); err != nil {
		return LoadStats{}, err
	}
	s.tel.batchCommits.Add(1)
	s.tel.recordsLoaded.Add(uint64(len(b.recs)))
	return b.stats, nil
}

// Rollback discards the staged records. The store is untouched — staging
// never reaches it — so rollback of an uncommitted batch is free.
func (b *Batch) Rollback() {
	b.done = true
	b.recs = nil
	b.stats = LoadStats{}
}
