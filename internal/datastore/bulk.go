package datastore

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"

	"perftrack/internal/ptdf"
)

// BulkSource names one PTdf document for a bulk load. Open is called at
// most once, from a decode worker goroutine; the returned reader must be
// independently readable (workers read several documents concurrently).
type BulkSource struct {
	Name string
	Open func() (io.ReadCloser, error)
}

// DocResult is the per-document outcome of a bulk load. Err is nil when
// the document committed; a failed document rolled back completely and
// did not affect any other document.
type DocResult struct {
	Name  string
	Stats LoadStats
	Err   error
}

// bulkDoc is one decoded (or failed) document in flight between the
// decode workers and the committer.
type bulkDoc struct {
	index int
	name  string
	batch *Batch
	err   error
}

// BulkLoadStream is the streaming bulk-ingest pipeline: next yields
// documents in order (io.EOF ends the stream), `workers` goroutines
// decode them in parallel into staged batches, and a single committer
// commits each batch transactionally in input order. Bounded channels
// give backpressure — at most ~2×workers documents are decoded but
// uncommitted — and failure is per document: a bad record fails (and
// fully rolls back) only its own document, every other document still
// commits. emit receives one DocResult per document, in input order,
// from the caller's goroutine.
//
// A non-EOF error from next stops dispatching and is returned after the
// already-dispatched documents finish.
func (s *Store) BulkLoadStream(next func() (string, io.ReadCloser, error), workers int, emit func(DocResult)) error {
	return s.BulkLoadStreamCtx(context.Background(), next, workers, emit)
}

// BulkLoadStreamCtx is BulkLoadStream under a context: when a trace
// rides ctx, each document's commit records its own
// datastore.batch.commit span (the decode fan-out is not traced — its
// cost shows up as the gap between commit spans).
func (s *Store) BulkLoadStreamCtx(ctx context.Context, next func() (string, io.ReadCloser, error), workers int, emit func(DocResult)) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type job struct {
		index int
		name  string
		rc    io.ReadCloser
	}
	window := make(chan struct{}, 2*workers) // decoded-but-uncommitted bound
	jobs := make(chan job)
	decoded := make(chan bulkDoc, 2*workers)

	var srcErr error
	go func() {
		defer close(jobs)
		for i := 0; ; i++ {
			window <- struct{}{}
			name, rc, err := next()
			if err == io.EOF {
				<-window
				return
			}
			if err != nil {
				<-window
				srcErr = err
				return
			}
			jobs <- job{index: i, name: name, rc: rc}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				b := s.NewBatch()
				r := ptdf.NewReader(j.rc)
				var derr error
				for {
					rec, err := r.Next()
					if err == io.EOF {
						break
					}
					if err != nil {
						// Fail fast: stop decoding this document, move on.
						derr = fmt.Errorf("%w: %w", err, ErrBadSpec)
						break
					}
					b.Stage(rec)
				}
				j.rc.Close()
				decoded <- bulkDoc{index: j.index, name: j.name, batch: b, err: derr}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(decoded)
	}()

	// Single committer: reorder decoded documents back into input order
	// and commit each as one batch.
	pending := make(map[int]bulkDoc)
	nextIdx := 0
	for d := range decoded {
		pending[d.index] = d
		for {
			d, ok := pending[nextIdx]
			if !ok {
				break
			}
			delete(pending, nextIdx)
			nextIdx++
			dr := DocResult{Name: d.name}
			if d.err != nil {
				dr.Err = fmt.Errorf("%s: %w", d.name, d.err)
			} else if stats, err := d.batch.CommitCtx(ctx); err != nil {
				dr.Err = fmt.Errorf("%s: %w", d.name, err)
			} else {
				dr.Stats = stats
			}
			emit(dr)
			<-window
		}
	}
	return srcErr
}

// BulkLoad loads many PTdf documents with parallel decoding and a single
// transactional committer, returning one result per document in input
// order. See BulkLoadStream for the pipeline semantics.
func (s *Store) BulkLoad(docs []BulkSource, workers int) []DocResult {
	out := make([]DocResult, 0, len(docs))
	i := 0
	next := func() (string, io.ReadCloser, error) {
		if i >= len(docs) {
			return "", nil, io.EOF
		}
		d := docs[i]
		i++
		rc, err := d.Open()
		if err != nil {
			// A document that cannot be opened fails alone, not the stream:
			// hand the workers a reader that reports the error.
			return d.Name, errReadCloser{err}, nil
		}
		return d.Name, rc, nil
	}
	s.BulkLoadStream(next, workers, func(dr DocResult) { out = append(out, dr) })
	return out
}

// BulkLoadFiles bulk-loads PTdf files from disk (the ptload -j path).
func (s *Store) BulkLoadFiles(paths []string, workers int) []DocResult {
	docs := make([]BulkSource, len(paths))
	for i, path := range paths {
		path := path
		docs[i] = BulkSource{Name: path, Open: func() (io.ReadCloser, error) { return os.Open(path) }}
	}
	return s.BulkLoad(docs, workers)
}

// errReadCloser surfaces a document-open failure through the decode path.
type errReadCloser struct{ err error }

func (e errReadCloser) Read([]byte) (int, error) { return 0, e.err }
func (e errReadCloser) Close() error             { return nil }
