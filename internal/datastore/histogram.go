package datastore

import (
	"fmt"
	"math"

	"perftrack/internal/core"
	"perftrack/internal/ptdf"
	"perftrack/internal/reldb"
)

// AddHistogramResult stores a complex, histogram-valued performance
// result (§6 future work): one performance_result row carrying the mean
// over bins with data as its summary scalar, plus a result_histogram row
// holding every bin. NaN marks bins with no data. It returns the
// performance-result ID.
func (s *Store) AddHistogramResult(pr *core.PerformanceResult, binWidth float64, values []float64) (int64, error) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	defer s.bumpGen()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addHistogramResultLocked(pr, binWidth, values)
}

func (s *Store) addHistogramResultLocked(pr *core.PerformanceResult, binWidth float64, values []float64) (int64, error) {
	if binWidth <= 0 {
		return 0, fmt.Errorf("datastore: histogram bin width %g <= 0", binWidth)
	}
	if len(values) == 0 {
		return 0, fmt.Errorf("datastore: histogram has no bins")
	}
	sum, n := 0.0, 0
	for _, v := range values {
		if !math.IsNaN(v) {
			sum += v
			n++
		}
	}
	summary := math.NaN()
	if n > 0 {
		summary = sum / float64(n)
	} else {
		return 0, fmt.Errorf("datastore: histogram has no bins with data")
	}
	prCopy := *pr
	prCopy.Value = summary

	id, err := s.addPerfResultLocked(&prCopy)
	if err != nil {
		return 0, err
	}
	_, err = s.insert("result_histogram", reldb.Row{
		reldb.Int(id),
		reldb.Float(binWidth),
		reldb.Int(int64(len(values))),
		reldb.Str(ptdf.FormatHistogramValues(values)),
	})
	if err != nil {
		return 0, err
	}
	return id, nil
}

// HistogramOf fetches the bins of a histogram-valued result. ok is false
// when the result is an ordinary scalar.
func (s *Store) HistogramOf(resultID int64) (binWidth float64, values []float64, ok bool, err error) {
	tab, found := s.eng.Table("result_histogram")
	if !found {
		return 0, nil, false, fmt.Errorf("datastore: result_histogram table missing")
	}
	row, _, found := tab.GetByPK(reldb.Int(resultID))
	if !found {
		return 0, nil, false, nil
	}
	values, err = ptdf.ParseHistogramValues(row[3].Text())
	if err != nil {
		return 0, nil, false, err
	}
	return row[1].Float64(), values, true, nil
}

// HistogramCount reports how many results are histogram-valued.
func (s *Store) HistogramCount() int64 {
	tab, ok := s.eng.Table("result_histogram")
	if !ok {
		return 0
	}
	return int64(tab.Len())
}
