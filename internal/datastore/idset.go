package datastore

import "sort"

// idSet is a sorted, deduplicated slice of row IDs. The pr-filter fast
// path represents per-family result sets this way so that combining
// families is a merge over sorted runs instead of hash-map probing.
type idSet []int64

// sortDedup sorts ids in place, removes duplicates, and returns the
// result as an idSet. The input slice is consumed.
func sortDedup(ids []int64) idSet {
	if len(ids) < 2 {
		return ids
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}

// gallopSearch returns the index of the first element of s that is >= v,
// probing exponentially from the front before binary-searching the
// bracketed run. Starting from the front keeps repeated calls with
// increasing v (as intersect makes) close to O(log gap) each.
func gallopSearch(s idSet, v int64) int {
	if len(s) == 0 || s[0] >= v {
		return 0
	}
	// Invariant: s[lo] < v. Double the step until s[hi] >= v or the end.
	lo, step := 0, 1
	for lo+step < len(s) && s[lo+step] < v {
		lo += step
		step *= 2
	}
	hi := lo + step
	if hi > len(s) {
		hi = len(s)
	}
	// Binary search in (lo, hi].
	return lo + 1 + sort.Search(hi-lo-1, func(i int) bool { return s[lo+1+i] >= v })
}

// gallopRatio is the size imbalance at which intersect switches from a
// linear merge to galloping through the larger set. Below it, the linear
// merge's cache-friendly sequential pass wins.
const gallopRatio = 8

// intersect returns the elements common to a and b as a new idSet. Both
// inputs must be sorted and deduplicated; neither is modified.
func (a idSet) intersect(b idSet) idSet {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return nil
	}
	out := make(idSet, 0, len(a))
	if len(b) >= gallopRatio*len(a) {
		// Gallop: for each element of the small set, exponentially search
		// forward in the remaining tail of the large set.
		rest := b
		for _, v := range a {
			i := gallopSearch(rest, v)
			if i == len(rest) {
				break
			}
			if rest[i] == v {
				out = append(out, v)
				i++
			}
			rest = rest[i:]
		}
		return out
	}
	// Linear merge.
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// intersectAll intersects every set, smallest first so the running
// intersection shrinks as early as possible. It returns nil on an empty
// input, and the (shared) single set when only one is given.
func intersectAll(sets []idSet) idSet {
	switch len(sets) {
	case 0:
		return nil
	case 1:
		return sets[0]
	}
	ordered := make([]idSet, len(sets))
	copy(ordered, sets)
	sort.Slice(ordered, func(i, j int) bool { return len(ordered[i]) < len(ordered[j]) })
	acc := ordered[0]
	for _, s := range ordered[1:] {
		if len(acc) == 0 {
			return nil
		}
		acc = acc.intersect(s)
	}
	return acc
}
