package datastore

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"perftrack/internal/core"
	"perftrack/internal/obs"
	"perftrack/internal/reldb"
	"perftrack/internal/sqldb"
)

// Store is PTDataStore: PerfTrack's interface to the underlying DBMS. It
// is safe for concurrent use: writers serialize on wmu (so a streamed
// PTdf load is atomic with respect to other writers), per-record state is
// guarded by mu, and reads go through the engine's reader lock. Lock
// ordering is always wmu → mu → engine; read paths never acquire mu or
// re-enter the engine from inside an engine scan callback.
type Store struct {
	eng reldb.Engine
	sql *sqldb.DB

	// UseClosureTables controls whether ancestor/descendant queries use the
	// resource_has_ancestor / resource_has_descendant tables (the paper's
	// design, default) or recompute by walking parent links (the ablation
	// baseline). Loading always maintains the tables.
	UseClosureTables bool

	// gen is the store generation, bumped after every mutation completes;
	// cache holds generation-stamped pr-filter results (see cache.go).
	// Together they make the GUI's repeated CountMatches/CountFamilyMatches
	// O(1) between writes without any risk of serving stale counts: a
	// reader that overlaps a mutation caches under the pre-mutation
	// generation, which the post-mutation bump discards.
	gen   atomic.Uint64
	cache *queryCache

	// wmu serializes mutating entry points against each other and against
	// whole-file transactional loads, without blocking readers.
	wmu sync.Mutex

	mu       sync.Mutex
	ins      inserter // mutation sink: the active load transaction, or nil for the engine
	types    *core.TypeSystem
	typeIDs  map[core.TypePath]int64
	resIDs   map[core.ResourceName]int64
	resNames map[int64]core.ResourceName
	resTypes map[int64]int64 // resource id -> focus_framework (type) id
	appIDs   map[string]int64
	execIDs  map[string]int64
	execApp  map[string]int64 // execution name -> application id
	metricID map[string]int64
	toolID   map[string]int64
	unitsID  map[string]int64
	focusIDs map[string]int64 // signature -> focus id

	// attrStats tracks per-attribute-name row counts and distinct-value
	// estimates for the query planner's cost model; see stats.go.
	attrStats map[string]*attrStat

	// tel counts store operations for the observability layer; see
	// telemetry.go.
	tel telemetry

	// scanBytes distributes columnar bytes touched per segment range
	// scan; the service layer bridges it into its metrics registry.
	scanBytes *obs.Histogram

	// scratch pools the materializer's per-chunk working memory
	// (*matScratch); at 100k-result chunks it tops 10 MB per call, and
	// reuse roughly halves a materialize's allocation and GC-assist cost.
	scratch sync.Pool
}

// segScanBytesBuckets spans 4 KiB point scans to multi-GiB full sweeps.
var segScanBytesBuckets = []float64{
	4 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30,
}

// SegmentScanBytes is the histogram of columnar bytes read per segment
// range scan.
func (s *Store) SegmentScanBytes() *obs.Histogram { return s.scanBytes }

// inserter is the mutation surface shared by the engine and a transaction;
// store inserts route through it so a PTdf load can run inside a Tx.
type inserter interface {
	Insert(table string, row reldb.Row) (int64, error)
}

// insert routes a row insert through the active load transaction when one
// is open, and straight to the engine otherwise. Callers hold s.mu.
func (s *Store) insert(table string, row reldb.Row) (int64, error) {
	if s.ins != nil {
		return s.ins.Insert(table, row)
	}
	return s.eng.Insert(table, row)
}

// Open attaches a store to a storage engine, creating and bootstrapping
// the schema if it is not present, and warming the name caches if it is.
func Open(eng reldb.Engine) (*Store, error) {
	s := &Store{
		eng:              eng,
		sql:              sqldb.Open(eng),
		cache:            newQueryCache(),
		scanBytes:        obs.NewHistogram(segScanBytesBuckets),
		UseClosureTables: true,
		types:            core.NewTypeSystem(),
		typeIDs:          make(map[core.TypePath]int64),
		resIDs:           make(map[core.ResourceName]int64),
		resNames:         make(map[int64]core.ResourceName),
		resTypes:         make(map[int64]int64),
		appIDs:           make(map[string]int64),
		execIDs:          make(map[string]int64),
		execApp:          make(map[string]int64),
		metricID:         make(map[string]int64),
		toolID:           make(map[string]int64),
		unitsID:          make(map[string]int64),
		focusIDs:         make(map[string]int64),
		attrStats:        make(map[string]*attrStat),
	}
	s.scratch.New = func() any { return new(matScratch) }
	if !schemaExists(eng) {
		if err := createSchema(s.sql); err != nil {
			return nil, err
		}
		// §3.1: PerfTrack uses the type extension interface to load the
		// initial set of base types when a new database is initialized.
		for _, t := range core.BaseTypes() {
			if err := s.AddResourceType(t); err != nil {
				return nil, err
			}
		}
		return s, nil
	}
	// Existing store: create any tables added since it was initialized,
	// then warm the name caches.
	if err := migrateSchema(s.sql, eng); err != nil {
		return nil, err
	}
	if err := s.warmCaches(); err != nil {
		return nil, err
	}
	return s, nil
}

// Engine returns the underlying storage engine.
func (s *Store) Engine() reldb.Engine { return s.eng }

// bumpGen advances the store generation, invalidating all cached
// pr-filter results. Every mutating entry point calls it (deferred, so
// the bump happens after the mutation is fully applied), including no-op
// re-adds: over-invalidation is always safe, and bumping after completion
// means a concurrent reader can never cache a partially-applied state
// under the new generation.
func (s *Store) bumpGen() { s.gen.Add(1) }

// Generation returns the current store generation. It increases on every
// mutation; cached query results are only served within one generation.
func (s *Store) Generation() uint64 { return s.gen.Load() }

// InvalidateQueryCache discards all cached pr-filter results. Callers
// that mutate the engine behind the store's back (raw SQL DML, direct
// engine inserts) must call it before querying again.
func (s *Store) InvalidateQueryCache() { s.bumpGen() }

// QueryEngineStats reports the pr-filter fast path's cache behaviour.
type QueryEngineStats struct {
	Generation   uint64
	CacheHits    uint64
	CacheMisses  uint64
	CacheEntries int
}

// QueryEngineStats snapshots the query engine counters.
func (s *Store) QueryEngineStats() QueryEngineStats {
	return QueryEngineStats{
		Generation:   s.gen.Load(),
		CacheHits:    s.cache.hits.Load(),
		CacheMisses:  s.cache.misses.Load(),
		CacheEntries: s.cache.size(),
	}
}

// SQL returns the SQL interface over the same data, for ad-hoc queries.
func (s *Store) SQL() *sqldb.DB { return s.sql }

// resetCachesLocked discards and rebuilds every in-memory name cache and
// the type system from the engine. The rollback path of a transactional
// load uses it: after the engine rows are undone, the caches must not
// retain IDs for rows that no longer exist. Callers hold s.mu.
func (s *Store) resetCachesLocked() error {
	s.types = core.NewTypeSystem()
	s.typeIDs = make(map[core.TypePath]int64)
	s.resIDs = make(map[core.ResourceName]int64)
	s.resNames = make(map[int64]core.ResourceName)
	s.resTypes = make(map[int64]int64)
	s.appIDs = make(map[string]int64)
	s.execIDs = make(map[string]int64)
	s.execApp = make(map[string]int64)
	s.metricID = make(map[string]int64)
	s.toolID = make(map[string]int64)
	s.unitsID = make(map[string]int64)
	s.focusIDs = make(map[string]int64)
	s.attrStats = make(map[string]*attrStat)
	return s.warmCaches()
}

// warmCaches rebuilds the in-memory name caches from an existing store.
func (s *Store) warmCaches() error {
	ffTab, _ := s.eng.Table("focus_framework")
	ffTab.Scan(func(_ int64, row reldb.Row) bool {
		tp := core.TypePath(row[1].Text())
		s.typeIDs[tp] = row[0].Int64()
		return true
	})
	// Register types root-first so the type system accepts children.
	var types []core.TypePath
	for t := range s.typeIDs {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i].Depth() < types[j].Depth() })
	for _, t := range types {
		if err := s.types.Add(t); err != nil {
			return err
		}
	}
	riTab, _ := s.eng.Table("resource_item")
	riTab.Scan(func(_ int64, row reldb.Row) bool {
		id := row[0].Int64()
		name := core.ResourceName(row[1].Text())
		s.resIDs[name] = id
		s.resNames[id] = name
		s.resTypes[id] = row[4].Int64()
		return true
	})
	warm := func(table string, cache map[string]int64) {
		t, _ := s.eng.Table(table)
		t.Scan(func(_ int64, row reldb.Row) bool {
			cache[row[1].Text()] = row[0].Int64()
			return true
		})
	}
	warm("application", s.appIDs)
	warm("execution", s.execIDs)
	exTab, _ := s.eng.Table("execution")
	exTab.Scan(func(_ int64, row reldb.Row) bool {
		s.execApp[row[1].Text()] = row[2].Int64()
		return true
	})
	warm("metric", s.metricID)
	warm("performance_tool", s.toolID)
	warm("units", s.unitsID)
	fTab, _ := s.eng.Table("focus")
	fTab.Scan(func(_ int64, row reldb.Row) bool {
		s.focusIDs[row[2].Text()] = row[0].Int64()
		return true
	})
	raTab, _ := s.eng.Table("resource_attribute")
	raTab.Scan(func(_ int64, row reldb.Row) bool {
		s.noteAttrLocked(row[2].Text(), row[3].Text())
		return true
	})
	return nil
}

// Types returns the type system view of the store.
func (s *Store) Types() *core.TypeSystem {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.types
}

// AddResourceType registers a resource type (the extensible type system of
// §2.1). Parent levels must be registered first; re-adding is a no-op.
func (s *Store) AddResourceType(t core.TypePath) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	defer s.bumpGen()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addResourceTypeLocked(t)
}

func (s *Store) addResourceTypeLocked(t core.TypePath) error {
	if _, ok := s.typeIDs[t]; ok {
		return nil
	}
	if err := s.types.Add(t); err != nil {
		return err
	}
	parentID := reldb.Null()
	if p := t.Parent(); p != "" {
		parentID = reldb.Int(s.typeIDs[p])
	}
	id, err := s.insert("focus_framework", reldb.Row{
		reldb.Null(), reldb.Str(string(t)), parentID,
	})
	if err != nil {
		return err
	}
	s.typeIDs[t] = id
	return nil
}

// AddApplication registers an application; re-adding returns the existing
// ID.
func (s *Store) AddApplication(name string) (int64, error) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	defer s.bumpGen()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addApplicationLocked(name)
}

func (s *Store) addApplicationLocked(name string) (int64, error) {
	if id, ok := s.appIDs[name]; ok {
		return id, nil
	}
	if name == "" {
		return 0, fmt.Errorf("datastore: empty application name: %w", ErrBadSpec)
	}
	id, err := s.insert("application", reldb.Row{reldb.Null(), reldb.Str(name)})
	if err != nil {
		return 0, err
	}
	s.appIDs[name] = id
	return id, nil
}

// AddExecution registers an execution of an application, creating the
// application if needed.
func (s *Store) AddExecution(name, app string) (int64, error) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	defer s.bumpGen()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addExecutionLocked(name, app)
}

func (s *Store) addExecutionLocked(name, app string) (int64, error) {
	if id, ok := s.execIDs[name]; ok {
		// Idempotent re-add; redefining under a different application is a
		// conflict, not a silent aliasing.
		if owner, ok := s.execApp[name]; ok {
			if curID, ok := s.appIDs[app]; !ok || curID != owner {
				return 0, fmt.Errorf("datastore: execution %q already registered under a different application: %w",
					name, ErrExists)
			}
		}
		return id, nil
	}
	if name == "" {
		return 0, fmt.Errorf("datastore: empty execution name: %w", ErrBadSpec)
	}
	appID, err := s.addApplicationLocked(app)
	if err != nil {
		return 0, err
	}
	id, err := s.insert("execution", reldb.Row{
		reldb.Null(), reldb.Str(name), reldb.Int(appID),
	})
	if err != nil {
		return 0, err
	}
	s.execIDs[name] = id
	s.execApp[name] = appID
	return id, nil
}

// lookupIn interns a name in one of the small lookup tables.
func (s *Store) lookupIn(table string, cache map[string]int64, name string) (int64, error) {
	if id, ok := cache[name]; ok {
		return id, nil
	}
	id, err := s.insert(table, reldb.Row{reldb.Null(), reldb.Str(name)})
	if err != nil {
		return 0, err
	}
	cache[name] = id
	return id, nil
}

// AddResource inserts a resource with the given full name and type,
// optionally scoped to an execution. Missing ancestor resources are
// created automatically with the corresponding type prefix. Re-adding an
// existing resource returns its ID.
func (s *Store) AddResource(name core.ResourceName, typ core.TypePath, exec string) (int64, error) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	defer s.bumpGen()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addResourceLocked(name, typ, exec)
}

func (s *Store) addResourceLocked(name core.ResourceName, typ core.TypePath, exec string) (int64, error) {
	if id, ok := s.resIDs[name]; ok {
		// Idempotent re-add; redefining with a different (known) type is a
		// conflict.
		if wantID, known := s.typeIDs[typ]; known {
			if tid, ok := s.resTypes[id]; ok && tid != wantID {
				return 0, fmt.Errorf("datastore: resource %q already registered with a different type: %w",
					name, ErrExists)
			}
		}
		return id, nil
	}
	if err := s.types.CheckResource(name, typ); err != nil {
		return 0, fmt.Errorf("%w: %w", err, ErrBadSpec)
	}
	var execID reldb.Value = reldb.Null()
	if exec != "" {
		id, ok := s.execIDs[exec]
		if !ok {
			return 0, fmt.Errorf("datastore: resource %q references unknown execution %q: %w", name, exec, ErrNotFound)
		}
		execID = reldb.Int(id)
	}
	// Create missing ancestors, root first, with the matching type prefix.
	parentID := reldb.Null()
	if p := name.Parent(); p != "" {
		pid, ok := s.resIDs[p]
		if !ok {
			var err error
			pid, err = s.addResourceLocked(p, typ.Parent(), exec)
			if err != nil {
				return 0, err
			}
		}
		parentID = reldb.Int(pid)
	}
	id, err := s.insert("resource_item", reldb.Row{
		reldb.Null(),
		reldb.Str(string(name)),
		reldb.Str(name.BaseName()),
		parentID,
		reldb.Int(s.typeIDs[typ]),
		execID,
	})
	if err != nil {
		return 0, err
	}
	s.resIDs[name] = id
	s.resNames[id] = name
	s.resTypes[id] = s.typeIDs[typ]
	// Maintain the closure tables: link this resource to every ancestor.
	for _, anc := range name.Ancestors() {
		aid := s.resIDs[anc]
		if _, err := s.insert("resource_has_ancestor", reldb.Row{
			reldb.Int(id), reldb.Int(aid),
		}); err != nil {
			return 0, err
		}
		if _, err := s.insert("resource_has_descendant", reldb.Row{
			reldb.Int(aid), reldb.Int(id),
		}); err != nil {
			return 0, err
		}
	}
	return id, nil
}

// SetResourceAttribute attaches a string attribute to a resource.
func (s *Store) SetResourceAttribute(name core.ResourceName, attr, value string) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	defer s.bumpGen()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.setResourceAttributeLocked(name, attr, value)
}

func (s *Store) setResourceAttributeLocked(name core.ResourceName, attr, value string) error {
	id, ok := s.resIDs[name]
	if !ok {
		return fmt.Errorf("datastore: no resource %q: %w", name, ErrNotFound)
	}
	_, err := s.insert("resource_attribute", reldb.Row{
		reldb.Null(), reldb.Int(id), reldb.Str(attr), reldb.Str(value), reldb.Str("string"),
	})
	if err == nil {
		s.noteAttrLocked(attr, value)
	}
	return err
}

// AddResourceConstraint records a resource-valued attribute: r2 is an
// attribute of r1 (e.g. the node a process ran on).
func (s *Store) AddResourceConstraint(r1, r2 core.ResourceName) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	defer s.bumpGen()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addResourceConstraintLocked(r1, r2)
}

func (s *Store) addResourceConstraintLocked(r1, r2 core.ResourceName) error {
	id1, ok := s.resIDs[r1]
	if !ok {
		return fmt.Errorf("datastore: no resource %q: %w", r1, ErrNotFound)
	}
	id2, ok := s.resIDs[r2]
	if !ok {
		return fmt.Errorf("datastore: no resource %q: %w", r2, ErrNotFound)
	}
	_, err := s.insert("resource_constraint", reldb.Row{
		reldb.Null(), reldb.Int(id1), reldb.Int(id2),
	})
	return err
}

// focusSignature canonically identifies a context for deduplication: a
// single context can apply to multiple performance results.
func focusSignature(ft core.FocusType, ids []int64) string {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var b strings.Builder
	b.WriteString(ft.String())
	for _, id := range ids {
		b.WriteByte(':')
		b.WriteString(strconv.FormatInt(id, 10))
	}
	return b.String()
}

// internFocus returns the focus ID for a context, creating the focus and
// its focus_has_resource rows if it is new.
func (s *Store) internFocus(ctx core.Context) (int64, error) {
	ids := make([]int64, 0, len(ctx.Resources))
	for _, r := range ctx.Resources {
		id, ok := s.resIDs[r]
		if !ok {
			return 0, fmt.Errorf("datastore: context references unknown resource %q: %w", r, ErrNotFound)
		}
		ids = append(ids, id)
	}
	sig := focusSignature(ctx.Type, ids)
	if id, ok := s.focusIDs[sig]; ok {
		return id, nil
	}
	fid, err := s.insert("focus", reldb.Row{
		reldb.Null(), reldb.Str(ctx.Type.String()), reldb.Str(sig),
	})
	if err != nil {
		return 0, err
	}
	seen := make(map[int64]bool, len(ids))
	for _, rid := range ids {
		if seen[rid] {
			continue
		}
		seen[rid] = true
		if _, err := s.insert("focus_has_resource", reldb.Row{
			reldb.Int(fid), reldb.Int(rid),
		}); err != nil {
			return 0, err
		}
	}
	s.focusIDs[sig] = fid
	return fid, nil
}

// AddPerfResult stores a performance result with its contexts. The
// execution and all context resources must already exist.
func (s *Store) AddPerfResult(pr *core.PerformanceResult) (int64, error) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	defer s.bumpGen()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addPerfResultLocked(pr)
}

func (s *Store) addPerfResultLocked(pr *core.PerformanceResult) (int64, error) {
	if err := pr.Validate(); err != nil {
		return 0, fmt.Errorf("%w: %w", err, ErrBadSpec)
	}
	execID, ok := s.execIDs[pr.Execution]
	if !ok {
		return 0, fmt.Errorf("datastore: unknown execution %q: %w", pr.Execution, ErrNotFound)
	}
	metricID, err := s.lookupIn("metric", s.metricID, pr.Metric)
	if err != nil {
		return 0, err
	}
	tool := pr.Tool
	if tool == "" {
		tool = "unknown"
	}
	toolID, err := s.lookupIn("performance_tool", s.toolID, tool)
	if err != nil {
		return 0, err
	}
	units := pr.Units
	if units == "" {
		units = "unitless"
	}
	unitsID, err := s.lookupIn("units", s.unitsID, units)
	if err != nil {
		return 0, err
	}
	rid, err := s.insert("performance_result", reldb.Row{
		reldb.Null(), reldb.Int(execID), reldb.Int(metricID),
		reldb.Int(toolID), reldb.Int(unitsID), reldb.Float(pr.Value),
	})
	if err != nil {
		return 0, err
	}
	// Duplicate contexts within one result collapse to a single focus link.
	seenFoci := make(map[int64]bool, len(pr.Contexts))
	for _, ctx := range pr.Contexts {
		fid, err := s.internFocus(ctx)
		if err != nil {
			return 0, err
		}
		if seenFoci[fid] {
			continue
		}
		seenFoci[fid] = true
		if _, err := s.insert("result_has_focus", reldb.Row{
			reldb.Int(rid), reldb.Int(fid),
		}); err != nil {
			return 0, err
		}
	}
	return rid, nil
}

// Stats summarizes the store for Table 1 style reporting.
type Stats struct {
	Applications int64
	Executions   int64
	Resources    int64
	Attributes   int64
	Results      int64
	Metrics      int64
	Foci         int64
	DataBytes    int64
}

// Stats reports current row counts and data volume.
func (s *Store) Stats() Stats {
	count := func(table string) int64 {
		t, ok := s.eng.Table(table)
		if !ok {
			return 0
		}
		return int64(t.Len())
	}
	return Stats{
		Applications: count("application"),
		Executions:   count("execution"),
		Resources:    count("resource_item"),
		Attributes:   count("resource_attribute"),
		Results:      count("performance_result"),
		Metrics:      count("metric"),
		Foci:         count("focus"),
		DataBytes:    s.eng.Stats().DataBytes,
	}
}
