package datastore

import (
	"errors"
	"reflect"
	"testing"

	"perftrack/internal/core"
)

func TestAttributeKeys(t *testing.T) {
	s := seedAttrStudy(t)
	keys, err := s.AttributeKeys("")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0].Name != "clock MHz" || keys[1].Name != "vendor" {
		t.Fatalf("keys = %+v", keys)
	}
	clock := keys[0]
	if clock.Resources != 3 || clock.Distinct != 3 || !clock.Numeric {
		t.Errorf("clock MHz stats = %+v", clock)
	}
	if clock.Min != 700 || clock.Max != 2400 {
		t.Errorf("clock MHz range = [%v, %v], want [700, 2400]", clock.Min, clock.Max)
	}
	if !reflect.DeepEqual(clock.Values, []string{"1000", "2400", "700"}) {
		t.Errorf("clock MHz values = %v", clock.Values)
	}
	vendor := keys[1]
	if vendor.Numeric || vendor.Resources != 1 || vendor.Min != 0 || vendor.Max != 0 {
		t.Errorf("vendor stats = %+v", vendor)
	}

	// Prefix filtering.
	keys, err = s.AttributeKeys("ven")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0].Name != "vendor" {
		t.Errorf("prefix ven = %+v", keys)
	}
	keys, err = s.AttributeKeys("nope")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 0 {
		t.Errorf("prefix nope = %+v", keys)
	}
}

func TestAttributeKeysLastWriteWins(t *testing.T) {
	s := seedAttrStudy(t)
	// Overwriting an attribute must not inflate Resources or leave the
	// stale value in the domain.
	if err := s.SetResourceAttribute("/GM/MCR/batch/n0/p0", "clock MHz", "2400"); err != nil {
		t.Fatal(err)
	}
	keys, err := s.AttributeKeys("clock")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 {
		t.Fatalf("keys = %+v", keys)
	}
	clock := keys[0]
	if clock.Resources != 3 || clock.Distinct != 2 {
		t.Errorf("after overwrite = %+v", clock)
	}
	if clock.Min != 1000 || clock.Max != 2400 {
		t.Errorf("range after overwrite = [%v, %v]", clock.Min, clock.Max)
	}
}

func TestAttributeKeysDomainCap(t *testing.T) {
	s := newStore(t)
	for i := 0; i < MaxAttrDomain+8; i++ {
		name := core.ResourceName("/app" + string(rune('a'+i/26)) + string(rune('a'+i%26)))
		if _, err := s.AddResource(name, "application", ""); err != nil {
			t.Fatal(err)
		}
		if err := s.SetResourceAttribute(name, "serial", name.BaseName()); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := s.AttributeKeys("serial")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 {
		t.Fatalf("keys = %+v", keys)
	}
	got := keys[0]
	if got.Distinct != MaxAttrDomain+8 {
		t.Errorf("Distinct = %d, want exact count %d", got.Distinct, MaxAttrDomain+8)
	}
	if len(got.Values) != MaxAttrDomain {
		t.Errorf("Values sample = %d entries, want cap %d", len(got.Values), MaxAttrDomain)
	}
}

func TestAttributeValues(t *testing.T) {
	s := newStore(t)
	id1, err := s.AddResource("/a", "application", "")
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.AddResource("/b", "application", "")
	if err != nil {
		t.Fatal(err)
	}
	for _, set := range []struct {
		res  core.ResourceName
		attr string
		val  string
	}{
		{"/a", "compiler", "-O0"},
		{"/b", "compiler", "-O2"},
		{"/a", "compiler", "-O3"}, // overwrite: last write wins
		{"/a", "vendor", "IBM"},
	} {
		if err := s.SetResourceAttribute(set.res, set.attr, set.val); err != nil {
			t.Fatal(err)
		}
	}
	vals, err := s.AttributeValues("compiler")
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]string{id1: "-O3", id2: "-O2"}
	if !reflect.DeepEqual(vals, want) {
		t.Errorf("AttributeValues = %v, want %v", vals, want)
	}
	vals, err = s.AttributeValues("no such attr")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 0 {
		t.Errorf("unknown attr values = %v", vals)
	}
}

func TestExecutionResourceIDs(t *testing.T) {
	s := newStore(t)
	appID, err := s.AddResource("/irs", "application", "")
	if err != nil {
		t.Fatal(err)
	}
	procID, err := s.AddResource("/GM/MCR/batch/n0/p0", "grid/machine/partition/node/processor", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddExecution("e1", "irs"); err != nil {
		t.Fatal(err)
	}
	execResID, err := s.AddResource("/e1", "execution", "e1")
	if err != nil {
		t.Fatal(err)
	}
	procOtherID, err := s.AddResource("/GF/Frost/batch/n9/p0", "grid/machine/partition/node/processor", "")
	if err != nil {
		t.Fatal(err)
	}
	// A process scoped to e1, constrained to the processor it ran on.
	procResID, err := s.AddResource("/e1/pid100", "execution/process", "e1")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddResourceConstraint("/e1/pid100", "/GM/MCR/batch/n0/p0"); err != nil {
		t.Fatal(err)
	}
	addResult(t, s, "e1", "wall time", 42, "/irs", "/e1")

	ids, err := s.ExecutionResourceIDs("e1")
	if err != nil {
		t.Fatal(err)
	}
	idSet := make(map[int64]bool, len(ids))
	for _, id := range ids {
		idSet[id] = true
	}
	// Context resources, execution-scoped resources, the constraint
	// partner, and the partner's ancestors must all be present.
	for _, want := range []struct {
		name string
		id   int64
	}{
		{"context /irs", appID},
		{"execution resource /e1", execResID},
		{"scoped process", procResID},
		{"constraint partner", procID},
	} {
		if !idSet[want.id] {
			t.Errorf("footprint missing %s (id %d); got %v", want.name, want.id, ids)
		}
	}
	if idSet[procOtherID] {
		t.Errorf("footprint includes unrelated resource %d", procOtherID)
	}
	// Ancestors of the constraint partner (machine /GM/MCR etc.) appear:
	// the footprint must be strictly larger than the four direct entries.
	if len(ids) <= 4 {
		t.Errorf("footprint = %v, want ancestors of the processor too", ids)
	}
	// Sorted, deduplicated.
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("footprint not sorted/deduped: %v", ids)
		}
	}

	if _, err := s.ExecutionResourceIDs("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown execution: %v, want ErrNotFound", err)
	}
}

func TestExecutionsOfResults(t *testing.T) {
	s := seedStudy(t)
	ids, err := s.MatchingResultIDs(core.PRFilter{})
	if err != nil {
		t.Fatal(err)
	}
	execs, err := s.ExecutionsOfResults(ids)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(execs, []string{"irs-frost", "irs-mcr"}) {
		t.Errorf("executions = %v", execs)
	}
	// Unknown result IDs are skipped, not fatal.
	execs, err = s.ExecutionsOfResults([]int64{99999})
	if err != nil {
		t.Fatal(err)
	}
	if len(execs) != 0 {
		t.Errorf("bogus ids resolved to %v", execs)
	}
}
