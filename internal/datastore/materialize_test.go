package datastore

import (
	"errors"
	"reflect"
	"runtime"
	"testing"

	"perftrack/internal/core"
)

// seedMaterializeStudy builds a store exercising everything the batch
// materializer must reproduce: multi-context results, foci shared
// across results (including reused in a different declaration order, so
// context order follows focus-ID order, not insertion order), deep
// resource paths, and several executions.
func seedMaterializeStudy(t *testing.T) (*Store, []int64) {
	t.Helper()
	s := newStore(t)
	s.AddResource("/irs", "application", "")
	s.AddResource("/GF/Frost/batch/n1/p0", "grid/machine/partition/node/processor", "")
	s.AddResource("/GM/MCR/batch/n1/p0", "grid/machine/partition/node/processor", "")
	s.AddResource("/GM/MCR/batch/n2/p0", "grid/machine/partition/node/processor", "")
	for _, exec := range []string{"m-frost", "m-mcr"} {
		if _, err := s.AddExecution(exec, "irs"); err != nil {
			t.Fatal(err)
		}
	}
	add := func(exec, metric string, value float64, ctxs ...core.Context) {
		t.Helper()
		if _, err := s.AddPerfResult(&core.PerformanceResult{
			Execution: exec, Metric: metric, Value: value, Units: "seconds", Tool: "test",
			Contexts: ctxs,
		}); err != nil {
			t.Fatal(err)
		}
	}
	ctxFrost := core.NewContext("/irs", "/GF/Frost")
	ctxMCR := core.NewContext("/irs", "/GM/MCR")
	ctxSend := core.Context{Type: core.FocusSender, Resources: []core.ResourceName{"/GM/MCR/batch/n1/p0"}}
	ctxRecv := core.Context{Type: core.FocusReceiver, Resources: []core.ResourceName{"/GM/MCR/batch/n2/p0"}}
	add("m-frost", "wall time", 120, ctxFrost)
	add("m-frost", "cpu time", 110, ctxFrost)
	add("m-mcr", "wall time", 80, ctxMCR)
	// Two contexts; their foci are shared with the messaging result below.
	add("m-mcr", "bytes sent", 4096, ctxSend, ctxRecv)
	// Same foci declared in the opposite order: both paths must emit
	// contexts in focus-ID order, not declaration order.
	add("m-mcr", "message count", 17, ctxRecv, ctxSend)
	// Focus shared across executions.
	add("m-frost", "proc time", 2.5, core.NewContext("/irs", "/GF/Frost/batch/n1/p0"))
	add("m-mcr", "proc time", 1.5, core.NewContext("/irs", "/GF/Frost/batch/n1/p0"))

	ids, err := s.MatchingResultIDs(core.PRFilter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 7 {
		t.Fatalf("seed results = %d, want 7", len(ids))
	}
	return s, ids
}

// perIDResults is the reference implementation: the N+1 path.
func perIDResults(t *testing.T, s *Store, ids []int64) []*core.PerformanceResult {
	t.Helper()
	out := make([]*core.PerformanceResult, 0, len(ids))
	for _, id := range ids {
		pr, err := s.ResultByID(id)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, pr)
	}
	return out
}

func TestMaterializeEquivalence(t *testing.T) {
	s, ids := seedMaterializeStudy(t)

	orders := map[string][]int64{
		"sorted":     ids,
		"reversed":   reverse(ids),
		"subset":     {ids[3], ids[0]},
		"single":     {ids[4]},
		"duplicates": {ids[2], ids[5], ids[2], ids[2]},
		// A duplicate before a later distinct ID: first-occurrence
		// positions and compact uniq indices disagree here.
		"dup-shifts-later": {ids[1], ids[1], ids[4], ids[0]},
	}
	for name, order := range orders {
		want := perIDResults(t, s, order)
		for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
			got, err := s.MaterializeResultsOpts(order, MaterializeOptions{Workers: workers})
			if err != nil {
				t.Fatalf("%s/w%d: %v", name, workers, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s/w%d: %d results, want %d", name, workers, len(got), len(want))
			}
			for i := range want {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Errorf("%s/w%d: result %d differs:\n got  %+v\n want %+v",
						name, workers, i, got[i], want[i])
				}
			}
		}
	}
}

func TestMaterializeStreamEquivalence(t *testing.T) {
	s, ids := seedMaterializeStudy(t)
	want := perIDResults(t, s, ids)
	for _, chunk := range []int{1, 3, len(ids), len(ids) + 5} {
		var got []*core.PerformanceResult
		batches := 0
		err := s.MaterializeStream(ids, MaterializeOptions{ChunkSize: chunk},
			func(batch []*core.PerformanceResult) error {
				batches++
				got = append(got, batch...)
				return nil
			})
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		wantBatches := (len(ids) + chunk - 1) / chunk
		if batches != wantBatches {
			t.Errorf("chunk %d: %d batches, want %d", chunk, batches, wantBatches)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("chunk %d: stream output differs from per-ID path", chunk)
		}
	}
}

func TestMaterializeStreamEmitError(t *testing.T) {
	s, ids := seedMaterializeStudy(t)
	boom := errors.New("boom")
	calls := 0
	err := s.MaterializeStream(ids, MaterializeOptions{ChunkSize: 2},
		func([]*core.PerformanceResult) error {
			calls++
			return boom
		})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
	if calls != 1 {
		t.Errorf("emit called %d times after error, want 1", calls)
	}
}

func TestMaterializeNotFound(t *testing.T) {
	s, ids := seedMaterializeStudy(t)
	// Both sparse (one ID) and dense (full set plus one) shapes.
	for _, bad := range [][]int64{{ids[len(ids)-1] + 999}, append(append([]int64{}, ids...), ids[len(ids)-1]+999)} {
		if _, err := s.MaterializeResults(bad); !errors.Is(err, ErrNotFound) {
			t.Errorf("MaterializeResults(%d ids) err = %v, want ErrNotFound", len(bad), err)
		}
	}
	out, err := s.MaterializeResults(nil)
	if err != nil || len(out) != 0 {
		t.Errorf("empty materialize = %v, %v", out, err)
	}
}

func TestQueryResultsUsesBatchPath(t *testing.T) {
	s, ids := seedMaterializeStudy(t)
	want := perIDResults(t, s, ids)
	got, err := s.QueryResults(core.PRFilter{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("QueryResults differs from per-ID materialization")
	}

	byExec, err := s.ResultsOfExecution("m-mcr")
	if err != nil {
		t.Fatal(err)
	}
	if len(byExec) != 4 {
		t.Fatalf("m-mcr results = %d, want 4", len(byExec))
	}
	for _, pr := range byExec {
		if pr.Execution != "m-mcr" {
			t.Errorf("stray execution %q", pr.Execution)
		}
	}
}

func reverse(ids []int64) []int64 {
	out := make([]int64, len(ids))
	for i, id := range ids {
		out[len(ids)-1-i] = id
	}
	return out
}
