package datastore

import "sync/atomic"

// telemetry holds the store's operation counters: plain atomics bumped
// on the write and materialize paths, cheap enough to stay enabled
// unconditionally. The service layer bridges them into its metrics
// registry at scrape time via Telemetry().
type telemetry struct {
	batchCommits     atomic.Uint64
	batchRollbacks   atomic.Uint64
	walFlushes       atomic.Uint64
	recordsLoaded    atomic.Uint64
	focusCacheHits   atomic.Uint64
	focusCacheMisses atomic.Uint64
	materializations atomic.Uint64
	resultsRead      atomic.Uint64

	segmentScans       atomic.Uint64
	segmentRowsScanned atomic.Uint64
	zoneMapPrunes      atomic.Uint64

	statsRefreshes     atomic.Uint64
	statsRefreshErrors atomic.Uint64
}

// Telemetry is a point-in-time snapshot of the store's operation
// counters. Match-cache numbers come from the generation-stamped query
// cache; focus-cache numbers count materializer focus decodes served
// from the per-query cache versus decoded from the engine.
type Telemetry struct {
	BatchCommits     uint64 // committed batches (LoadPTdf, bulk load, LoadRecord)
	BatchRollbacks   uint64 // batches rolled back by a bad record
	WALFlushes       uint64 // WAL group flushes on a durable engine
	RecordsLoaded    uint64 // PTdf records applied by committed batches
	MatchCacheHits   uint64 // pr-filter query cache hits
	MatchCacheMisses uint64 // pr-filter query cache misses
	FocusCacheHits   uint64 // focus links served from a materializer's cache
	FocusCacheMisses uint64 // focus IDs decoded from the engine
	Materializations uint64 // materializer chunks run
	ResultsRead      uint64 // performance results materialized

	SegmentScans       uint64 // columnar segment range scans run
	SegmentRowsScanned uint64 // rows visited by segment scans
	ZoneMapPrunes      uint64 // segments skipped by zone-map bounds

	StatsRefreshes     uint64 // planner statistics rewrites at batch commit
	StatsRefreshErrors uint64 // statistics rewrites that failed (advisory)
}

// Telemetry snapshots the store's operation counters.
func (s *Store) Telemetry() Telemetry {
	return Telemetry{
		BatchCommits:     s.tel.batchCommits.Load(),
		BatchRollbacks:   s.tel.batchRollbacks.Load(),
		WALFlushes:       s.tel.walFlushes.Load(),
		RecordsLoaded:    s.tel.recordsLoaded.Load(),
		MatchCacheHits:   s.cache.hits.Load(),
		MatchCacheMisses: s.cache.misses.Load(),
		FocusCacheHits:   s.tel.focusCacheHits.Load(),
		FocusCacheMisses: s.tel.focusCacheMisses.Load(),
		Materializations: s.tel.materializations.Load(),
		ResultsRead:      s.tel.resultsRead.Load(),

		SegmentScans:       s.tel.segmentScans.Load(),
		SegmentRowsScanned: s.tel.segmentRowsScanned.Load(),
		ZoneMapPrunes:      s.tel.zoneMapPrunes.Load(),

		StatsRefreshes:     s.tel.statsRefreshes.Load(),
		StatsRefreshErrors: s.tel.statsRefreshErrors.Load(),
	}
}
