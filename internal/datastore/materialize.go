package datastore

// Batched, parallel result materialization — the read hot path behind
// QueryResults, ResultsOfExecution, query.Retrieve, the compare engine,
// and /v1/results.
//
// The per-ID path (ResultByID) pays four dictionary Gets plus two or
// more PK-prefix scans per result, each taking the engine read lock
// once. At SMG-UV scale (~10k results per execution) a single retrieval
// is millions of lock acquisitions. The batch path amortizes all of it
// per query instead of per result:
//
//   1. Prefetch the four metadata dictionaries (execution, metric,
//      performance_tool, units) into plain maps — one scan each.
//   2. Fetch the matched performance_result rows either with per-ID
//      Gets sharded over workers (sparse) or one full table scan
//      filtered by the ID set (dense).
//   3. Resolve result_has_focus the same way, grouping focus IDs per
//      result in PK order (ascending focus ID — identical to the
//      per-ID path's context ordering).
//   4. Decode each distinct focus exactly once into a shared
//      focus → Context cache (foci are heavily shared across results):
//      one focus Get plus one focus_has_resource scan per focus, then a
//      single s.mu critical section to map every resource ID to its
//      name.
//   5. Assemble PerformanceResults over N worker goroutines sharding
//      the ID slice, preserving input order.
//
// Consistency matches the per-ID path: neither holds a lock across
// results, so a query racing a writer can observe a mix of generations
// either way. Materialized Contexts may share Resources slices between
// results that reference the same focus; callers must treat returned
// results as read-only (every current consumer does).

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"sync"

	"perftrack/internal/core"
	"perftrack/internal/obs"
	"perftrack/internal/reldb"
)

// MaterializeOptions tunes the batch materializer. The zero value picks
// sensible defaults.
type MaterializeOptions struct {
	// Workers bounds the materialization fan-out. <=0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// ChunkSize bounds how many results MaterializeStream assembles
	// per emitted batch. <=0 means defaultMaterializeChunk. Ignored by
	// MaterializeResults, which produces one batch.
	ChunkSize int
	// NoSegments forces the B-tree fetch path even on a segment engine,
	// for equivalence testing and ablation benchmarks.
	NoSegments bool
}

// segmentViewer is the optional columnar interface of the segment
// engine: a consistent snapshot of a hot table's flushed segments.
type segmentViewer interface {
	SegmentView(table string) (*reldb.SegView, bool)
}

const (
	defaultMaterializeChunk = 4096

	// denseScanDivisor selects between per-ID Gets and one full table
	// scan: when the wanted set is at least 1/denseScanDivisor of the
	// table, a single scan beats len(ids) locked point lookups.
	denseScanDivisor = 4
)

// dictNames loads an ID → name dictionary table (name at row[1]) into a
// map in one scan.
func (s *Store) dictNames(table string) (map[int64]string, error) {
	t, ok := s.eng.Table(table)
	if !ok {
		return nil, fmt.Errorf("datastore: no %s table: %w", table, ErrNotFound)
	}
	out := make(map[int64]string, t.Len())
	t.Scan(func(id int64, row reldb.Row) bool {
		out[id] = row[1].Text()
		return true
	})
	return out, nil
}

// dict is an ID → name lookup over one prefetched dictionary table.
// Dictionary IDs are allocated sequentially, so the common case is a
// compact ID range served by a direct-index slice; sparse ranges fall
// back to a map. The distinction matters in the assembly loop, which
// does four lookups per result.
type dict struct {
	base  int64
	names []string
	has   []bool
	m     map[int64]string
}

func (s *Store) loadDict(table string) (*dict, error) {
	names, err := s.dictNames(table)
	if err != nil {
		return nil, err
	}
	d := &dict{}
	if len(names) == 0 {
		d.m = names
		return d, nil
	}
	lo, hi := int64(0), int64(0)
	first := true
	for id := range names {
		if first || id < lo {
			lo = id
		}
		if first || id > hi {
			hi = id
		}
		first = false
	}
	if span := hi - lo + 1; span <= int64(4*len(names))+1024 {
		d.base = lo
		d.names = make([]string, span)
		d.has = make([]bool, span)
		for id, name := range names {
			d.names[id-lo] = name
			d.has[id-lo] = true
		}
		return d, nil
	}
	d.m = names
	return d, nil
}

func (d *dict) get(id int64) (string, bool) {
	if d.has != nil {
		off := id - d.base
		if off < 0 || off >= int64(len(d.has)) || !d.has[off] {
			return "", false
		}
		return d.names[off], true
	}
	name, ok := d.m[id]
	return name, ok
}

// posIndex maps each distinct input ID to its index in the
// deduplicated slice. Matched result IDs come out of the pr-filter
// engine sorted and near-sequential, so the common case is a compact
// range served by a direct-index table (one bounds check instead of a
// hash per scanned row); wide ranges fall back to a map.
type posIndex struct {
	uniq  []int64
	base  int64
	slots []int32 // index+1; 0 = absent
	m     map[int64]int
}

func newPosIndex(ids []int64) *posIndex {
	p := &posIndex{}
	p.reset(ids)
	return p
}

// reset rebuilds the index over ids, reusing backing storage from any
// previous use (pooled indexes come through here between chunks).
func (p *posIndex) reset(ids []int64) {
	lo, hi := ids[0], ids[0]
	for _, id := range ids[1:] {
		if id < lo {
			lo = id
		}
		if id > hi {
			hi = id
		}
	}
	p.base = lo
	if cap(p.uniq) < len(ids) {
		p.uniq = make([]int64, 0, len(ids))
	} else {
		p.uniq = p.uniq[:0]
	}
	if span := hi - lo + 1; span <= int64(4*len(ids))+1024 && len(ids) < 1<<31-1 {
		p.m = nil
		if int64(cap(p.slots)) < span {
			p.slots = make([]int32, span)
		} else {
			p.slots = p.slots[:span]
			clear(p.slots)
		}
		for _, id := range ids {
			if p.slots[id-lo] == 0 {
				p.uniq = append(p.uniq, id)
				p.slots[id-lo] = int32(len(p.uniq))
			}
		}
	} else {
		p.slots = nil
		if p.m == nil {
			p.m = make(map[int64]int, len(ids))
		} else {
			clear(p.m)
		}
		for _, id := range ids {
			if _, ok := p.m[id]; !ok {
				p.m[id] = len(p.uniq)
				p.uniq = append(p.uniq, id)
			}
		}
	}
}

func (p *posIndex) get(id int64) (int, bool) {
	if p.slots != nil {
		off := id - p.base
		if off < 0 || off >= int64(len(p.slots)) || p.slots[off] == 0 {
			return 0, false
		}
		return int(p.slots[off]) - 1, true
	}
	i, ok := p.m[id]
	return i, ok
}

// matFocus is one decoded focus: its type and its resource names in
// focus_has_resource PK order (ascending resource ID). ctx1 is the
// focus as a ready-made single-context list: most results carry exactly
// one focus, and sharing one slice per focus across all of them keeps
// the assembly phase from allocating per result.
type matFocus struct {
	typ  core.FocusType
	res  []core.ResourceName
	ctx1 []core.Context
}

// materializer carries the per-query state shared by every chunk of one
// materialization: the prefetched dictionaries and the focus cache.
type materializer struct {
	s          *Store
	workers    int
	noSegments bool

	exec, metric, tool, units *dict

	foci map[int64]*matFocus // focus ID → decoded, grows chunk by chunk
}

func (s *Store) newMaterializer(ctx context.Context, opt MaterializeOptions) (*materializer, error) {
	m := &materializer{
		s:          s,
		workers:    opt.Workers,
		noSegments: opt.NoSegments,
		foci:       make(map[int64]*matFocus),
	}
	if m.workers <= 0 {
		m.workers = runtime.GOMAXPROCS(0)
	}
	_, span := obs.StartSpan(ctx, "materialize.prefetch")
	defer span.End()
	var err error
	if m.exec, err = s.loadDict("execution"); err != nil {
		return nil, err
	}
	if m.metric, err = s.loadDict("metric"); err != nil {
		return nil, err
	}
	if m.tool, err = s.loadDict("performance_tool"); err != nil {
		return nil, err
	}
	if m.units, err = s.loadDict("units"); err != nil {
		return nil, err
	}
	return m, nil
}

// matScratch is run's pooled working memory: everything sized by the
// chunk that does not escape into the returned results. Stale contents
// never leak — recs and counts are cleared on reuse, starts is only read
// where counts marks it written, and the rest are fully overwritten.
type matScratch struct {
	pos            posIndex
	recs           []resultRec
	starts, counts []int
	ctxOff         []int
	arena          []int64
}

// ints returns buf resized to n without clearing, growing as needed.
func (sc *matScratch) ints(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// resultRec is one performance_result row plus its focus links, staged
// between the fetch phases and assembly.
type resultRec struct {
	found    bool
	execID   int64
	metricID int64
	toolID   int64
	unitsID  int64
	value    float64
	focusIDs []int64
}

// shardRange splits [0, n) into contiguous spans, runs fn(lo, hi) on
// each from its own goroutine, and returns the first error.
func shardRange(n, workers int, fn func(lo, hi int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return fn(0, n)
	}
	errs := make([]error, workers)
	span := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * span
		hi := lo + span
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = fn(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// segView returns the columnar view of a hot table when the engine has
// one and the segment path is enabled; nil falls back to the B-tree.
func (m *materializer) segView(table string) *reldb.SegView {
	if m.noSegments {
		return nil
	}
	sv, ok := m.s.eng.(segmentViewer)
	if !ok {
		return nil
	}
	v, ok := sv.SegmentView(table)
	if !ok {
		return nil
	}
	return v
}

// noteScan records one segment range scan in the store telemetry.
func (m *materializer) noteScan(rows, pruned int, bytes int64) {
	m.s.tel.segmentScans.Add(1)
	m.s.tel.segmentRowsScanned.Add(uint64(rows))
	m.s.tel.zoneMapPrunes.Add(uint64(pruned))
	m.s.scanBytes.Observe(float64(bytes))
}

// minMax returns the bounds of a non-empty ID slice.
func minMax(ids []int64) (lo, hi int64) {
	lo, hi = ids[0], ids[0]
	for _, id := range ids[1:] {
		if id < lo {
			lo = id
		}
		if id > hi {
			hi = id
		}
	}
	return lo, hi
}

// scanResultSegments fills recs from the columnar segments of
// performance_result (PK == row ID), then point-fetches the unflushed
// tail from the B-tree. IDs still missing afterwards are left !found for
// the caller's not-found report.
func (m *materializer) scanResultSegments(v *reldb.SegView, tab *reldb.Table, pos *posIndex, recs []resultRec) {
	lo, hi := minMax(pos.uniq)
	scanned := 0
	pruned, bytes := v.ScanPKRange(lo, hi, func(b reldb.ColumnBlock) bool {
		ids := b.RowIDs()
		execs := b.Int64s(1)
		metrics := b.Int64s(2)
		tools := b.Int64s(3)
		units := b.Int64s(4)
		vals := b.Float64s(5)
		scanned += len(ids)
		for i, id := range ids {
			if j, ok := pos.get(id); ok {
				recs[j] = resultRec{
					found:    true,
					execID:   execs[i],
					metricID: metrics[i],
					toolID:   tools[i],
					unitsID:  units[i],
					value:    vals[i],
				}
			}
		}
		return true
	})
	m.noteScan(scanned, pruned, bytes)
	for i := range recs {
		if recs[i].found {
			continue
		}
		row, ok := tab.Get(pos.uniq[i])
		if !ok {
			continue
		}
		recs[i] = resultRec{
			found:    true,
			execID:   row[1].Int64(),
			metricID: row[2].Int64(),
			toolID:   row[3].Int64(),
			unitsID:  row[4].Int64(),
			value:    row[5].Float64(),
		}
	}
}

// scanLinkSegments streams a two-column link table (owner_id, member_id)
// from its columnar segments, then walks the unflushed B-tree tail,
// calling add for every link whose owner is in the wanted set. Both
// passes deliver links in PK order, and tail owners are >= the flushed
// maximum (anything else would have invalidated the view), so each
// owner's members arrive contiguously and ascending — the same contract
// as a full B-tree scan.
func (m *materializer) scanLinkSegments(v *reldb.SegView, tab *reldb.Table, want *posIndex, add func(i int, member int64)) {
	lo, hi := minMax(want.uniq)
	scanned := 0
	pruned, bytes := v.ScanPKRange(lo, hi, func(b reldb.ColumnBlock) bool {
		owners := b.Int64s(0)
		members := b.Int64s(1)
		scanned += len(owners)
		for i, owner := range owners {
			if j, ok := want.get(owner); ok {
				add(j, members[i])
			}
		}
		return true
	})
	m.noteScan(scanned, pruned, bytes)
	tailFrom := v.MaxPK()
	if hi < tailFrom {
		return // every wanted owner is below the flushed tail
	}
	watermark := v.TailRowID()
	tab.PKRange([]reldb.Value{reldb.Int(tailFrom)}, nil, func(id int64, row reldb.Row) bool {
		if id <= watermark {
			return true // flushed row at the boundary PK, already scanned
		}
		owner := row[0].Int64()
		if owner > hi {
			return false
		}
		if j, ok := want.get(owner); ok {
			add(j, row[1].Int64())
		}
		return true
	})
}

// run materializes one chunk of IDs, preserving input order (duplicate
// IDs yield duplicate pointers to one shared result).
func (m *materializer) run(ctx context.Context, ids []int64) ([]*core.PerformanceResult, error) {
	if len(ids) == 0 {
		return []*core.PerformanceResult{}, nil
	}
	// Dedupe while remembering each distinct ID's index. The chunk-sized
	// working memory comes from the store's scratch pool; it is returned
	// only on success paths (abandoned scratch just falls to the GC).
	sc := m.s.scratch.Get().(*matScratch)
	sc.pos.reset(ids)
	pos := &sc.pos
	uniq := pos.uniq
	if cap(sc.recs) < len(uniq) {
		sc.recs = make([]resultRec, len(uniq))
	} else {
		sc.recs = sc.recs[:len(uniq)]
		clear(sc.recs)
	}
	recs := sc.recs
	m.s.tel.materializations.Add(1)
	m.s.tel.resultsRead.Add(uint64(len(uniq)))

	// Phase 1: performance_result rows. The fetch span covers phases 1–2
	// (row fetch plus focus-link resolution) and is ended explicitly on
	// every path: a deferred closure here measurably slows the whole
	// chunk (it forces a larger frame on run, which the per-chunk worker
	// goroutines then pay for in stack growth).
	_, fetchSpan := obs.StartSpan(ctx, "materialize.fetch")
	fetchSpan.Annotate("results", strconv.Itoa(len(uniq)))
	prTab, ok := m.s.eng.Table("performance_result")
	if !ok {
		fetchSpan.End()
		return nil, fmt.Errorf("datastore: no performance_result table: %w", ErrNotFound)
	}
	dense := len(uniq)*denseScanDivisor >= prTab.Len()
	if prView := m.segView("performance_result"); dense && prView != nil {
		m.scanResultSegments(prView, prTab, pos, recs)
	} else if dense {
		prTab.Scan(func(id int64, row reldb.Row) bool {
			i, ok := pos.get(id)
			if !ok {
				return true
			}
			recs[i] = resultRec{
				found:    true,
				execID:   row[1].Int64(),
				metricID: row[2].Int64(),
				toolID:   row[3].Int64(),
				unitsID:  row[4].Int64(),
				value:    row[5].Float64(),
			}
			return true
		})
	} else {
		if err := shardRange(len(uniq), m.workers, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				row, ok := prTab.Get(uniq[i])
				if !ok {
					continue // reported below, like the dense path
				}
				recs[i] = resultRec{
					found:    true,
					execID:   row[1].Int64(),
					metricID: row[2].Int64(),
					toolID:   row[3].Int64(),
					unitsID:  row[4].Int64(),
					value:    row[5].Float64(),
				}
			}
			return nil
		}); err != nil {
			fetchSpan.End()
			return nil, err
		}
	}
	for i := range recs {
		if !recs[i].found {
			fetchSpan.End()
			return nil, fmt.Errorf("datastore: no performance result %d: %w", uniq[i], ErrNotFound)
		}
	}

	// Phase 2: result → focus links, grouped per result in PK order
	// (ascending focus ID), matching ResultByID's context ordering.
	rhfTab, ok := m.s.eng.Table("result_has_focus")
	if !ok {
		fetchSpan.End()
		return nil, fmt.Errorf("datastore: no result_has_focus table: %w", ErrNotFound)
	}
	if dense {
		// The PK is (result_id, focus_id), so either scan hands every
		// result's links contiguously: stage them in one shared arena
		// and slice it up afterwards instead of growing one tiny slice
		// per result.
		if cap(sc.arena) < rhfTab.Len() {
			sc.arena = make([]int64, 0, rhfTab.Len())
		}
		arena := sc.arena[:0]
		starts := sc.ints(&sc.starts, len(uniq))
		counts := sc.ints(&sc.counts, len(uniq))
		clear(counts)
		stage := func(i int, fid int64) {
			if counts[i] == 0 {
				starts[i] = len(arena)
			}
			arena = append(arena, fid)
			counts[i]++
		}
		if rhfView := m.segView("result_has_focus"); rhfView != nil {
			m.scanLinkSegments(rhfView, rhfTab, pos, stage)
		} else {
			rhfTab.Scan(func(_ int64, link reldb.Row) bool {
				if i, ok := pos.get(link[0].Int64()); ok {
					stage(i, link[1].Int64())
				}
				return true
			})
		}
		sc.arena = arena // keep any growth for the next chunk
		for i := range recs {
			if counts[i] > 0 {
				recs[i].focusIDs = arena[starts[i] : starts[i]+counts[i] : starts[i]+counts[i]]
			}
		}
	} else {
		if err := shardRange(len(uniq), m.workers, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				if err := rhfTab.PKScan([]reldb.Value{reldb.Int(uniq[i])},
					func(_ int64, link reldb.Row) bool {
						recs[i].focusIDs = append(recs[i].focusIDs, link[1].Int64())
						return true
					}); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			fetchSpan.End()
			return nil, err
		}
	}

	fetchSpan.End()

	// Phase 3: decode each focus not yet in the per-query cache.
	_, focusSpan := obs.StartSpan(ctx, "materialize.focus")
	// links counts only multi-focus results: single-focus results (the
	// common case) reuse their focus's shared ctx1 slice at assembly and
	// need no arena slot.
	links := 0
	ctxOff := sc.ints(&sc.ctxOff, len(recs))
	for i := range recs {
		ctxOff[i] = links
		if n := len(recs[i].focusIDs); n > 1 {
			links += n
		}
	}
	// Foci are shared heavily across results, so dedupe while collecting
	// (a small set) instead of sorting one entry per link.
	var needed []int64
	var pending map[int64]struct{}
	misses := 0
	for i := range recs {
		for _, fid := range recs[i].focusIDs {
			if _, ok := m.foci[fid]; ok {
				continue
			}
			misses++
			if pending == nil {
				pending = make(map[int64]struct{}, 64)
			}
			if _, dup := pending[fid]; !dup {
				pending[fid] = struct{}{}
				needed = append(needed, fid)
			}
		}
	}
	m.s.tel.focusCacheHits.Add(uint64(links - misses))
	focusSpan.Annotate("cached", strconv.Itoa(links-misses))
	if len(needed) > 0 {
		decode := sortDedup(needed)
		m.s.tel.focusCacheMisses.Add(uint64(len(decode)))
		focusSpan.Annotate("decoded", strconv.Itoa(len(decode)))
		if err := m.decodeFoci(decode); err != nil {
			focusSpan.End()
			return nil, err
		}
	}
	focusSpan.End()

	// Phase 4: assemble over the worker pool into one block (a single
	// allocation for the whole chunk), then lay out pointers in input
	// order.
	_, assembleSpan := obs.StartSpan(ctx, "materialize.assemble")
	defer assembleSpan.End()
	assembled := make([]core.PerformanceResult, len(uniq))
	// Contexts for the whole chunk live in one arena block, sliced per
	// result at the offsets recorded above; workers fill disjoint ranges.
	ctxArena := make([]core.Context, links)
	if err := shardRange(len(uniq), m.workers, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			rec := &recs[i]
			pr := &assembled[i]
			pr.Value = rec.value
			var ok bool
			if pr.Execution, ok = m.exec.get(rec.execID); !ok {
				return fmt.Errorf("datastore: no execution id %d", rec.execID)
			}
			if pr.Metric, ok = m.metric.get(rec.metricID); !ok {
				return fmt.Errorf("datastore: no metric id %d", rec.metricID)
			}
			if pr.Tool, ok = m.tool.get(rec.toolID); !ok {
				return fmt.Errorf("datastore: no performance_tool id %d", rec.toolID)
			}
			if pr.Units, ok = m.units.get(rec.unitsID); !ok {
				return fmt.Errorf("datastore: no units id %d", rec.unitsID)
			}
			switch n := len(rec.focusIDs); {
			case n == 1:
				pr.Contexts = m.foci[rec.focusIDs[0]].ctx1
			case n > 1:
				ctxs := ctxArena[ctxOff[i] : ctxOff[i]+n : ctxOff[i]+n]
				for k, fid := range rec.focusIDs {
					f := m.foci[fid]
					ctxs[k] = core.Context{Type: f.typ, Resources: f.res}
				}
				pr.Contexts = ctxs
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	out := make([]*core.PerformanceResult, len(ids))
	if len(uniq) == len(ids) {
		// No duplicates: uniq order is input order.
		for i := range assembled {
			out[i] = &assembled[i]
		}
		m.s.scratch.Put(sc)
		return out, nil
	}
	for j, id := range ids {
		i, _ := pos.get(id) // every input ID was found in phase 1
		out[j] = &assembled[i]
	}
	m.s.scratch.Put(sc)
	return out, nil
}

// decodeFoci resolves the given sorted, deduplicated focus IDs into the
// cache: type plus resource names in ascending resource-ID order. All
// engine reads happen first (sharded over workers), then one s.mu
// critical section maps every resource ID to its name — s.mu must never
// be taken inside an engine scan callback (lock order is store →
// engine).
func (m *materializer) decodeFoci(fids []int64) error {
	fTab, ok := m.s.eng.Table("focus")
	if !ok {
		return fmt.Errorf("datastore: no focus table: %w", ErrNotFound)
	}
	fhrTab, ok := m.s.eng.Table("focus_has_resource")
	if !ok {
		return fmt.Errorf("datastore: no focus_has_resource table: %w", ErrNotFound)
	}
	types := make([]core.FocusType, len(fids))
	resIDs := make([][]int64, len(fids))
	if len(fids)*denseScanDivisor >= fTab.Len() {
		fpos := newPosIndex(fids)
		found := make([]bool, len(fids))
		var perr error
		fTab.Scan(func(id int64, row reldb.Row) bool {
			i, ok := fpos.get(id)
			if !ok {
				return true
			}
			ft, err := core.ParseFocusType(row[1].Text())
			if err != nil {
				perr = err
				return false
			}
			types[i] = ft
			found[i] = true
			return true
		})
		if perr != nil {
			return perr
		}
		for i, fid := range fids {
			if !found[i] {
				return fmt.Errorf("datastore: missing focus %d", fid)
			}
		}
		// PK is (focus_id, resource_id): each focus's links arrive
		// contiguously, so stage them in one arena (same trick as the
		// result_has_focus scan).
		arena := make([]int64, 0, fhrTab.Len())
		starts := make([]int, len(fids))
		counts := make([]int, len(fids))
		stage := func(i int, rid int64) {
			if counts[i] == 0 {
				starts[i] = len(arena)
			}
			arena = append(arena, rid)
			counts[i]++
		}
		if fhrView := m.segView("focus_has_resource"); fhrView != nil {
			m.scanLinkSegments(fhrView, fhrTab, fpos, stage)
		} else {
			fhrTab.Scan(func(_ int64, link reldb.Row) bool {
				if i, ok := fpos.get(link[0].Int64()); ok {
					stage(i, link[1].Int64())
				}
				return true
			})
		}
		for i := range resIDs {
			if counts[i] > 0 {
				resIDs[i] = arena[starts[i] : starts[i]+counts[i] : starts[i]+counts[i]]
			}
		}
	} else {
		if err := shardRange(len(fids), m.workers, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				row, ok := fTab.Get(fids[i])
				if !ok {
					return fmt.Errorf("datastore: missing focus %d", fids[i])
				}
				ft, err := core.ParseFocusType(row[1].Text())
				if err != nil {
					return err
				}
				types[i] = ft
				if err := fhrTab.PKScan([]reldb.Value{reldb.Int(fids[i])},
					func(_ int64, link reldb.Row) bool {
						resIDs[i] = append(resIDs[i], link[1].Int64())
						return true
					}); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}
	// One critical section resolves every resource name for the whole
	// batch of foci (the per-ID path pays one s.mu round trip per focus
	// per result).
	m.s.mu.Lock()
	for i := range fids {
		var names []core.ResourceName
		if len(resIDs[i]) > 0 {
			names = make([]core.ResourceName, 0, len(resIDs[i]))
			for _, rid := range resIDs[i] {
				names = append(names, m.s.resNames[rid])
			}
		}
		m.foci[fids[i]] = &matFocus{
			typ:  types[i],
			res:  names,
			ctx1: []core.Context{{Type: types[i], Resources: names}},
		}
	}
	m.s.mu.Unlock()
	return nil
}

// MaterializeResults materializes the given performance-result IDs in
// one batch, preserving input order, with default options. Returned
// results may share Contexts data between results referencing the same
// focus; callers must treat them as read-only.
func (s *Store) MaterializeResults(ids []int64) ([]*core.PerformanceResult, error) {
	return s.MaterializeResultsOptsCtx(context.Background(), ids, MaterializeOptions{})
}

// MaterializeResultsCtx is MaterializeResults under a context: when a
// trace rides ctx, the materializer records its phase spans
// (materialize.prefetch, .fetch, .focus, .assemble) in the request's
// span tree.
func (s *Store) MaterializeResultsCtx(ctx context.Context, ids []int64) ([]*core.PerformanceResult, error) {
	return s.MaterializeResultsOptsCtx(ctx, ids, MaterializeOptions{})
}

// MaterializeResultsOpts is MaterializeResults with explicit options.
func (s *Store) MaterializeResultsOpts(ids []int64, opt MaterializeOptions) ([]*core.PerformanceResult, error) {
	return s.MaterializeResultsOptsCtx(context.Background(), ids, opt)
}

// MaterializeResultsOptsCtx is MaterializeResultsCtx with explicit
// options.
func (s *Store) MaterializeResultsOptsCtx(ctx context.Context, ids []int64, opt MaterializeOptions) ([]*core.PerformanceResult, error) {
	m, err := s.newMaterializer(ctx, opt)
	if err != nil {
		return nil, err
	}
	return m.run(ctx, ids)
}

// MaterializeStream materializes IDs in bounded chunks, invoking emit
// with each batch in input order, so memory stays bounded on
// full-corpus retrievals. The dictionary prefetch and focus cache are
// shared across chunks. A non-nil error from emit aborts the stream.
func (s *Store) MaterializeStream(ids []int64, opt MaterializeOptions, emit func([]*core.PerformanceResult) error) error {
	return s.MaterializeStreamCtx(context.Background(), ids, opt, emit)
}

// MaterializeStreamCtx is MaterializeStream under a context; each chunk
// records its own phase spans.
func (s *Store) MaterializeStreamCtx(ctx context.Context, ids []int64, opt MaterializeOptions, emit func([]*core.PerformanceResult) error) error {
	m, err := s.newMaterializer(ctx, opt)
	if err != nil {
		return err
	}
	chunk := opt.ChunkSize
	if chunk <= 0 {
		chunk = defaultMaterializeChunk
	}
	for lo := 0; lo < len(ids); lo += chunk {
		hi := lo + chunk
		if hi > len(ids) {
			hi = len(ids)
		}
		out, err := m.run(ctx, ids[lo:hi])
		if err != nil {
			return err
		}
		if err := emit(out); err != nil {
			return err
		}
	}
	return nil
}
