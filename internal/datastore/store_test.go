package datastore

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"perftrack/internal/core"
	"perftrack/internal/reldb"
)

// openEngine opens a file engine for persistence tests.
func openEngine(dir string) (*reldb.FileEngine, error) {
	return reldb.OpenFile(dir)
}

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(reldb.NewMem())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestOpenBootstrapsSchemaAndBaseTypes(t *testing.T) {
	s := newStore(t)
	for _, table := range tableNames {
		if _, ok := s.Engine().Table(table); !ok {
			t.Errorf("table %q missing", table)
		}
	}
	ts := s.Types()
	if !ts.Has("grid/machine/partition/node/processor") || !ts.Has("application") {
		t.Error("base types not bootstrapped")
	}
}

func TestSchemaDDLShowsFigure1Tables(t *testing.T) {
	s := newStore(t)
	ddl := s.SchemaDDL()
	for _, want := range []string{
		"CREATE TABLE resource_item",
		"CREATE TABLE performance_result",
		"CREATE TABLE resource_constraint",
		"CREATE TABLE resource_has_ancestor",
		"focus_framework_id",
		"FOREIGN KEY (parent_id) REFERENCES resource_item (id)",
	} {
		if !strings.Contains(ddl, want) {
			t.Errorf("schema DDL missing %q", want)
		}
	}
}

func TestAddResourceCreatesAncestors(t *testing.T) {
	s := newStore(t)
	_, err := s.AddResource("/SingleMachineFrost/Frost/batch/frost121/p0",
		"grid/machine/partition/node/processor", "")
	if err != nil {
		t.Fatal(err)
	}
	// All four ancestors exist with the right types.
	for name, typ := range map[core.ResourceName]core.TypePath{
		"/SingleMachineFrost":                      "grid",
		"/SingleMachineFrost/Frost":                "grid/machine",
		"/SingleMachineFrost/Frost/batch":          "grid/machine/partition",
		"/SingleMachineFrost/Frost/batch/frost121": "grid/machine/partition/node",
	} {
		res, err := s.ResourceByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Type != typ {
			t.Errorf("%s type = %q, want %q", name, res.Type, typ)
		}
	}
}

func TestAddResourceIdempotent(t *testing.T) {
	s := newStore(t)
	id1, err := s.AddResource("/irs", "application", "")
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.AddResource("/irs", "application", "")
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Errorf("re-add returned new id %d != %d", id2, id1)
	}
}

func TestAddResourceRejectsTypeMismatch(t *testing.T) {
	s := newStore(t)
	if _, err := s.AddResource("/a/b", "application", ""); err == nil {
		t.Error("depth mismatch accepted")
	}
	if _, err := s.AddResource("/a", "nosuchtype", ""); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestResourceAttributesAndConstraints(t *testing.T) {
	s := newStore(t)
	if _, err := s.AddResource("/M/m/b/n16", "grid/machine/partition/node", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddExecution("e1", "irs"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddResource("/e1/p8", "execution/process", "e1"); err != nil {
		t.Fatal(err)
	}
	if err := s.SetResourceAttribute("/M/m/b/n16", "memory GB", "16"); err != nil {
		t.Fatal(err)
	}
	// §3.1's example: process 8 runs on node 16.
	if err := s.AddResourceConstraint("/e1/p8", "/M/m/b/n16"); err != nil {
		t.Fatal(err)
	}
	res, err := s.ResourceByName("/M/m/b/n16")
	if err != nil {
		t.Fatal(err)
	}
	if res.Attributes["memory GB"] != "16" {
		t.Errorf("attributes = %v", res.Attributes)
	}
	proc, err := s.ResourceByName("/e1/p8")
	if err != nil {
		t.Fatal(err)
	}
	if len(proc.Constraints) != 1 || proc.Constraints[0] != "/M/m/b/n16" {
		t.Errorf("constraints = %v", proc.Constraints)
	}
}

func TestAttributeOnMissingResource(t *testing.T) {
	s := newStore(t)
	if err := s.SetResourceAttribute("/nope", "a", "b"); err == nil {
		t.Error("attribute on missing resource accepted")
	}
	if err := s.AddResourceConstraint("/nope", "/also-nope"); err == nil {
		t.Error("constraint on missing resources accepted")
	}
}

func TestTypeExtension(t *testing.T) {
	s := newStore(t)
	// §4.3: a brand-new top-level hierarchy for Paradyn syncObjects.
	if err := s.AddResourceType("syncObject"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddResourceType("syncObject/communicator"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddResource("/comm/MPI_COMM_WORLD", "syncObject/communicator", ""); err != nil {
		t.Fatal(err)
	}
	if err := s.AddResourceType("nochild/without/parent"); err == nil {
		t.Error("orphan type accepted")
	}
}

func TestAncestorsDescendantsBothPaths(t *testing.T) {
	s := newStore(t)
	if _, err := s.AddResource("/G/M/b/n1/p0", "grid/machine/partition/node/processor", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddResource("/G/M/b/n1/p1", "grid/machine/partition/node/processor", ""); err != nil {
		t.Fatal(err)
	}
	for _, useClosure := range []bool{true, false} {
		s.UseClosureTables = useClosure
		anc, err := s.Ancestors("/G/M/b/n1/p0")
		if err != nil {
			t.Fatal(err)
		}
		if len(anc) != 4 {
			t.Errorf("closure=%v: ancestors = %v", useClosure, anc)
		}
		desc, err := s.Descendants("/G/M/b")
		if err != nil {
			t.Fatal(err)
		}
		if len(desc) != 3 { // n1, p0, p1
			t.Errorf("closure=%v: descendants = %v", useClosure, desc)
		}
	}
}

func TestChildrenLazyFetch(t *testing.T) {
	s := newStore(t)
	s.AddResource("/G/M/b/n1/p0", "grid/machine/partition/node/processor", "")
	s.AddResource("/G/M/b/n2/p0", "grid/machine/partition/node/processor", "")
	kids, err := s.Children("/G/M/b")
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 2 || kids[0] != "/G/M/b/n1" || kids[1] != "/G/M/b/n2" {
		t.Errorf("children = %v", kids)
	}
}

func TestResourcesOfTypeAndBaseName(t *testing.T) {
	s := newStore(t)
	s.AddResource("/GF/Frost/batch", "grid/machine/partition", "")
	s.AddResource("/GM/MCR/batch", "grid/machine/partition", "")
	s.AddResource("/GM/MCR/debug", "grid/machine/partition", "")
	byType, err := s.ResourcesOfType("grid/machine/partition")
	if err != nil {
		t.Fatal(err)
	}
	if len(byType) != 3 {
		t.Errorf("byType = %v", byType)
	}
	byBase, err := s.ResourcesWithBaseName("batch")
	if err != nil {
		t.Fatal(err)
	}
	if len(byBase) != 2 {
		t.Errorf("byBase = %v", byBase)
	}
}

func addResult(t *testing.T, s *Store, exec, metric string, value float64, resources ...core.ResourceName) int64 {
	t.Helper()
	id, err := s.AddPerfResult(&core.PerformanceResult{
		Execution: exec, Metric: metric, Value: value, Units: "seconds", Tool: "test",
		Contexts: []core.Context{core.NewContext(resources...)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// seedStudy builds a small two-machine, two-execution study.
func seedStudy(t *testing.T) *Store {
	t.Helper()
	s := newStore(t)
	s.AddResource("/irs", "application", "")
	s.AddResource("/GF/Frost/batch/n1/p0", "grid/machine/partition/node/processor", "")
	s.AddResource("/GM/MCR/batch/n1/p0", "grid/machine/partition/node/processor", "")
	if _, err := s.AddExecution("irs-frost", "irs"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddExecution("irs-mcr", "irs"); err != nil {
		t.Fatal(err)
	}
	addResult(t, s, "irs-frost", "wall time", 120, "/irs", "/GF/Frost")
	addResult(t, s, "irs-frost", "cpu time", 110, "/irs", "/GF/Frost")
	addResult(t, s, "irs-mcr", "wall time", 80, "/irs", "/GM/MCR")
	addResult(t, s, "irs-frost", "proc time", 2.5, "/irs", "/GF/Frost/batch/n1/p0")
	return s
}

func TestAddPerfResultAndFetch(t *testing.T) {
	s := seedStudy(t)
	ids, err := s.MatchingResultIDs(core.PRFilter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 4 {
		t.Fatalf("results = %d", len(ids))
	}
	pr, err := s.ResultByID(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if pr.Execution != "irs-frost" || pr.Metric != "wall time" || pr.Value != 120 {
		t.Errorf("result = %+v", pr)
	}
	if len(pr.Contexts) != 1 || len(pr.Contexts[0].Resources) != 2 {
		t.Errorf("contexts = %+v", pr.Contexts)
	}
}

func TestPerfResultUnknownExecution(t *testing.T) {
	s := newStore(t)
	s.AddResource("/irs", "application", "")
	_, err := s.AddPerfResult(&core.PerformanceResult{
		Execution: "nope", Metric: "t", Value: 1,
		Contexts: []core.Context{core.NewContext("/irs")},
	})
	if err == nil {
		t.Error("unknown execution accepted")
	}
}

func TestPerfResultUnknownResource(t *testing.T) {
	s := newStore(t)
	s.AddExecution("e1", "app")
	_, err := s.AddPerfResult(&core.PerformanceResult{
		Execution: "e1", Metric: "t", Value: 1,
		Contexts: []core.Context{core.NewContext("/ghost")},
	})
	if err == nil {
		t.Error("unknown context resource accepted")
	}
}

func TestFocusDeduplication(t *testing.T) {
	// "a single context can apply to multiple performance results."
	s := newStore(t)
	s.AddResource("/irs", "application", "")
	s.AddExecution("e1", "irs")
	addResult(t, s, "e1", "m1", 1, "/irs")
	addResult(t, s, "e1", "m2", 2, "/irs")
	fTab, _ := s.Engine().Table("focus")
	if fTab.Len() != 1 {
		t.Errorf("focus rows = %d, want 1 (deduplicated)", fTab.Len())
	}
}

func TestMultiContextResult(t *testing.T) {
	// §4.2: two resource sets per result (mpiP caller/callee).
	s := newStore(t)
	s.AddResource("/irs", "application", "")
	s.AddResource("/bld/main.c/caller", "build/module/function", "")
	s.AddResource("/bld/main.c/callee", "build/module/function", "")
	s.AddExecution("e1", "irs")
	_, err := s.AddPerfResult(&core.PerformanceResult{
		Execution: "e1", Metric: "MPI time", Value: 3, Tool: "mpiP",
		Contexts: []core.Context{
			{Type: core.FocusParent, Resources: []core.ResourceName{"/bld/main.c/caller"}},
			{Type: core.FocusChild, Resources: []core.ResourceName{"/bld/main.c/callee"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ids, _ := s.MatchingResultIDs(core.PRFilter{})
	pr, err := s.ResultByID(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Contexts) != 2 {
		t.Fatalf("contexts = %+v", pr.Contexts)
	}
	// Filter by the callee family alone still finds the result.
	prf := core.PRFilter{Families: []core.Family{core.NewFamily("/bld/main.c/callee")}}
	n, err := s.CountMatches(prf)
	if err != nil || n != 1 {
		t.Errorf("callee filter matches = %d, %v", n, err)
	}
}

func TestApplyFilterByTypeNameAttrs(t *testing.T) {
	s := seedStudy(t)
	s.SetResourceAttribute("/GF/Frost", "vendor", "IBM")
	s.SetResourceAttribute("/GM/MCR", "vendor", "LNXI")

	fam, err := s.ApplyFilter(core.ResourceFilter{Type: "grid/machine"})
	if err != nil || fam.Size() != 2 {
		t.Errorf("by type: %v, %v", fam.Members(), err)
	}
	fam, err = s.ApplyFilter(core.ResourceFilter{Name: "/GF/Frost", Include: core.IncludeDescendants})
	if err != nil || fam.Size() != 4 { // Frost, batch, n1, p0
		t.Errorf("by name + D: %v, %v", fam.Members(), err)
	}
	fam, err = s.ApplyFilter(core.ResourceFilter{BaseName: "batch"})
	if err != nil || fam.Size() != 2 {
		t.Errorf("by base name: %v, %v", fam.Members(), err)
	}
	fam, err = s.ApplyFilter(core.ResourceFilter{
		Type:  "grid/machine",
		Attrs: []core.AttrPredicate{{Attr: "vendor", Cmp: core.CmpEq, Value: "IBM"}},
	})
	if err != nil || fam.Size() != 1 || !fam.Contains("/GF/Frost") {
		t.Errorf("by attrs: %v, %v", fam.Members(), err)
	}
}

func TestPRFilterQueryAgainstStore(t *testing.T) {
	s := seedStudy(t)
	frost, err := s.ApplyFilter(core.ResourceFilter{Name: "/GF/Frost", Include: core.IncludeDescendants})
	if err != nil {
		t.Fatal(err)
	}
	app, err := s.ApplyFilter(core.ResourceFilter{Type: "application"})
	if err != nil {
		t.Fatal(err)
	}
	prf := core.PRFilter{Families: []core.Family{frost, app}}
	results, err := s.QueryResults(prf)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 { // wall, cpu, proc on Frost
		t.Fatalf("results = %d", len(results))
	}
	for _, pr := range results {
		if pr.Execution != "irs-frost" {
			t.Errorf("unexpected execution %q", pr.Execution)
		}
	}
}

func TestLiveMatchCounts(t *testing.T) {
	// Figure 3 behaviour: per-family counts and whole-filter counts.
	s := seedStudy(t)
	frost, _ := s.ApplyFilter(core.ResourceFilter{Name: "/GF/Frost", Include: core.IncludeDescendants})
	mcr, _ := s.ApplyFilter(core.ResourceFilter{Name: "/GM/MCR", Include: core.IncludeDescendants})

	nFrost, err := s.CountFamilyMatches(frost)
	if err != nil || nFrost != 3 {
		t.Errorf("frost family = %d, %v", nFrost, err)
	}
	nMCR, err := s.CountFamilyMatches(mcr)
	if err != nil || nMCR != 1 {
		t.Errorf("mcr family = %d, %v", nMCR, err)
	}
	// Both families together: no result touches both machines.
	n, err := s.CountMatches(core.PRFilter{Families: []core.Family{frost, mcr}})
	if err != nil || n != 0 {
		t.Errorf("joint count = %d, %v", n, err)
	}
}

func TestListingHelpers(t *testing.T) {
	s := seedStudy(t)
	if apps, err := s.Applications(); err != nil || len(apps) != 1 || apps[0] != "irs" {
		t.Errorf("apps = %v, %v", apps, err)
	}
	if execs, err := s.Executions(); err != nil || len(execs) != 2 {
		t.Errorf("execs = %v, %v", execs, err)
	}
	if ms, err := s.Metrics(); err != nil || len(ms) != 3 {
		t.Errorf("metrics = %v, %v", ms, err)
	}
	if tools, err := s.Tools(); err != nil || len(tools) != 1 || tools[0] != "test" {
		t.Errorf("tools = %v, %v", tools, err)
	}
}

func TestStatsCounts(t *testing.T) {
	s := seedStudy(t)
	st := s.Stats()
	if st.Applications != 1 || st.Executions != 2 || st.Results != 4 {
		t.Errorf("stats = %+v", st)
	}
	if st.Resources != 11 { // irs + 2 chains of 5
		t.Errorf("resources = %d", st.Resources)
	}
	if st.DataBytes <= 0 {
		t.Error("DataBytes should be positive")
	}
}

func TestStorePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	fe, err := reldb.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(fe)
	if err != nil {
		t.Fatal(err)
	}
	s.AddResource("/irs", "application", "")
	s.AddExecution("e1", "irs")
	addResult(t, s, "e1", "wall", 9.5, "/irs")
	if err := fe.Close(); err != nil {
		t.Fatal(err)
	}

	fe2, err := reldb.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fe2.Close()
	s2, err := Open(fe2)
	if err != nil {
		t.Fatal(err)
	}
	// Caches are warmed: lookups and new loads work.
	if !s2.HasResource("/irs") {
		t.Error("resource lost after reopen")
	}
	ids, err := s2.MatchingResultIDs(core.PRFilter{})
	if err != nil || len(ids) != 1 {
		t.Fatalf("results after reopen = %v, %v", ids, err)
	}
	pr, err := s2.ResultByID(ids[0])
	if err != nil || pr.Value != 9.5 {
		t.Errorf("result = %+v, %v", pr, err)
	}
	// The type system is restored; extensions still work.
	if err := s2.AddResourceType("time/interval/phase"); err != nil {
		t.Errorf("type extension after reopen: %v", err)
	}
	addResult(t, s2, "e1", "wall2", 1.5, "/irs")
}

func TestConcurrentLoadersAndReaders(t *testing.T) {
	// Multiple goroutines load different executions while readers run
	// pr-filter queries — the multi-scientist sharing scenario of §1.
	s := newStore(t)
	s.AddResource("/irs", "application", "")
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for e := 0; e < 5; e++ {
				exec := fmt.Sprintf("w%d-e%d", w, e)
				if _, err := s.AddExecution(exec, "irs"); err != nil {
					errs <- err
					return
				}
				execRes := core.ResourceName("/" + exec)
				if _, err := s.AddResource(execRes, "execution", exec); err != nil {
					errs <- err
					return
				}
				for r := 0; r < 10; r++ {
					if _, err := s.AddPerfResult(&core.PerformanceResult{
						Execution: exec, Metric: fmt.Sprintf("m%d", r), Value: float64(r),
						Contexts: []core.Context{core.NewContext("/irs", execRes)},
					}); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			fam := core.NewFamily("/irs")
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.CountFamilyMatches(fam); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Executions != 20 || st.Results != 200 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSchemaMigrationAddsNewTables(t *testing.T) {
	// Simulate a store created by an older version that lacked the
	// result_histogram table: drop it, reopen, and expect it recreated
	// (with a working index path) by the migration in Open.
	dir := t.TempDir()
	fe, err := reldb.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(fe); err != nil {
		t.Fatal(err)
	}
	if err := fe.DropTable("result_histogram"); err != nil {
		t.Fatal(err)
	}
	if err := fe.Close(); err != nil {
		t.Fatal(err)
	}

	fe2, err := reldb.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fe2.Close()
	s, err := Open(fe2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fe2.Table("result_histogram"); !ok {
		t.Fatal("migration did not recreate result_histogram")
	}
	// The recreated table is usable.
	s.AddResource("/app", "application", "")
	s.AddExecution("e1", "app")
	if _, err := s.AddHistogramResult(&core.PerformanceResult{
		Execution: "e1", Metric: "m", Tool: "t", Units: "u",
		Contexts: []core.Context{core.NewContext("/app")},
	}, 0.1, []float64{1}); err != nil {
		t.Fatal(err)
	}
}

func TestSQLInterfaceOverStore(t *testing.T) {
	s := seedStudy(t)
	r, err := s.SQL().Query(`SELECT m.name, COUNT(*) FROM performance_result pr
		JOIN metric m ON pr.metric_id = m.id GROUP BY m.name ORDER BY m.name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Errorf("metric groups = %d", len(r.Rows))
	}
}

func TestSchemaMigrationBackfillsAttributeIndex(t *testing.T) {
	// Simulate a store created by an older version that lacked the
	// resource_attribute (name, value) index the pr-filter fast path
	// scans: drop it, reopen, and expect Open to recreate it backfilled
	// from the existing attribute rows.
	dir := t.TempDir()
	fe, err := reldb.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(fe)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddResource("/GF/Frost", "grid/machine", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddResource("/GM/MCR", "grid/machine", ""); err != nil {
		t.Fatal(err)
	}
	if err := s.SetResourceAttribute("/GF/Frost", "vendor", "IBM"); err != nil {
		t.Fatal(err)
	}
	if err := s.SetResourceAttribute("/GM/MCR", "vendor", "LNXI"); err != nil {
		t.Fatal(err)
	}
	if err := fe.DropIndex("resource_attribute", "resource_attribute_name"); err != nil {
		t.Fatal(err)
	}
	if err := fe.Close(); err != nil {
		t.Fatal(err)
	}

	fe2, err := reldb.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fe2.Close()
	raTab, ok := fe2.Table("resource_attribute")
	if !ok {
		t.Fatal("resource_attribute table missing after reopen")
	}
	if raTab.HasIndex("resource_attribute_name") {
		t.Fatal("index present before migration; DropIndex did not persist")
	}
	s2, err := Open(fe2)
	if err != nil {
		t.Fatal(err)
	}
	if !raTab.HasIndex("resource_attribute_name") {
		t.Fatal("migration did not recreate resource_attribute_name")
	}
	// The backfilled index answers attribute filters over pre-migration rows.
	fam, err := s2.ApplyFilter(core.ResourceFilter{
		Attrs: []core.AttrPredicate{{Attr: "vendor", Cmp: core.CmpEq, Value: "IBM"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fam.Size() != 1 || !fam.Contains("/GF/Frost") {
		t.Fatalf("attribute filter over migrated index = %v", fam.Members())
	}
}
