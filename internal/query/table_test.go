package query

import (
	"bytes"
	"strings"
	"testing"

	"perftrack/internal/core"
	"perftrack/internal/datastore"
	"perftrack/internal/reldb"
)

// studyStore builds a store with IRS runs at two process counts on two
// machines, with per-machine attributes.
func studyStore(t *testing.T) *datastore.Store {
	t.Helper()
	s, err := datastore.Open(reldb.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	mustDo := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	_, err = s.AddResource("/irs", "application", "")
	mustDo(err)
	_, err = s.AddResource("/GF/Frost", "grid/machine", "")
	mustDo(err)
	_, err = s.AddResource("/GM/MCR", "grid/machine", "")
	mustDo(err)
	mustDo(s.SetResourceAttribute("/GF/Frost", "os", "AIX"))
	mustDo(s.SetResourceAttribute("/GM/MCR", "os", "Linux"))

	runs := []struct {
		exec    string
		machine core.ResourceName
		nprocs  string
		wall    float64
	}{
		{"irs-frost-8", "/GF/Frost", "8", 100},
		{"irs-frost-16", "/GF/Frost", "16", 60},
		{"irs-mcr-8", "/GM/MCR", "8", 80},
		{"irs-mcr-16", "/GM/MCR", "16", 45},
	}
	for _, run := range runs {
		_, err := s.AddExecution(run.exec, "irs")
		mustDo(err)
		execRes := core.ResourceName("/" + run.exec)
		_, err = s.AddResource(execRes, "execution", run.exec)
		mustDo(err)
		mustDo(s.SetResourceAttribute(execRes, "nprocs", run.nprocs))
		_, err = s.AddPerfResult(&core.PerformanceResult{
			Execution: run.exec, Metric: "wall time", Value: run.wall,
			Units: "seconds", Tool: "IRS",
			Contexts: []core.Context{core.NewContext("/irs", run.machine, execRes)},
		})
		mustDo(err)
		_, err = s.AddPerfResult(&core.PerformanceResult{
			Execution: run.exec, Metric: "mpi time", Value: run.wall * 0.3,
			Units: "seconds", Tool: "IRS",
			Contexts: []core.Context{core.NewContext("/irs", run.machine, execRes)},
		})
		mustDo(err)
	}
	return s
}

func retrieveAll(t *testing.T, s *datastore.Store) *Table {
	t.Helper()
	tbl, err := Retrieve(s, core.PRFilter{})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestRetrieveBuildsRows(t *testing.T) {
	s := studyStore(t)
	tbl := retrieveAll(t, s)
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if got := tbl.Columns(); len(got) != 5 {
		t.Errorf("initial columns = %v", got)
	}
}

func TestRetrieveWithFilter(t *testing.T) {
	s := studyStore(t)
	fam, err := s.ApplyFilter(core.ResourceFilter{Name: "/GF/Frost", Include: core.IncludeDescendants})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Retrieve(s, core.PRFilter{Families: []core.Family{fam}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("frost rows = %d", len(tbl.Rows))
	}
}

func TestFreeResourcesOmitIdenticalTypes(t *testing.T) {
	s := studyStore(t)
	tbl := retrieveAll(t, s)
	free, err := tbl.FreeResources()
	if err != nil {
		t.Fatal(err)
	}
	byType := make(map[core.TypePath]FreeResourceColumn)
	for _, c := range free {
		byType[c.Type] = c
	}
	// application is identical everywhere -> omitted (§3.2's "operating
	// system" example).
	if _, ok := byType["application"]; ok {
		t.Error("identical type 'application' should be omitted")
	}
	// machine differs -> offered, with its attributes listed.
	mc, ok := byType["grid/machine"]
	if !ok {
		t.Fatal("grid/machine should be offered")
	}
	if mc.Distinct != 2 {
		t.Errorf("machine distinct = %d", mc.Distinct)
	}
	if len(mc.Attributes) != 1 || mc.Attributes[0] != "os" {
		t.Errorf("machine attributes = %v", mc.Attributes)
	}
	if _, ok := byType["execution"]; !ok {
		t.Error("execution should be offered")
	}
}

func TestAddColumnBaseAndFullNames(t *testing.T) {
	s := studyStore(t)
	tbl := retrieveAll(t, s)
	if err := tbl.AddColumn("grid/machine", false); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddColumn("grid/machine", false); err != nil {
		t.Fatal(err) // idempotent
	}
	if len(tbl.ExtraColumns) != 1 {
		t.Errorf("extra columns = %v", tbl.ExtraColumns)
	}
	cell := tbl.Cell(tbl.Rows[0], "grid/machine")
	if cell != "Frost" && cell != "MCR" {
		t.Errorf("machine cell = %q", cell)
	}
	tbl2 := retrieveAll(t, s)
	if err := tbl2.AddColumn("grid/machine", true); err != nil {
		t.Fatal(err)
	}
	cell = tbl2.Cell(tbl2.Rows[0], "grid/machine")
	if !strings.HasPrefix(cell, "/G") {
		t.Errorf("full-name cell = %q", cell)
	}
}

func TestAddAttributeColumn(t *testing.T) {
	s := studyStore(t)
	tbl := retrieveAll(t, s)
	if err := tbl.AddAttributeColumn("grid/machine", "os"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddAttributeColumn("execution", "nprocs"); err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, row := range tbl.Rows {
		found[tbl.Cell(row, "grid/machine.os")] = true
	}
	if !found["AIX"] || !found["Linux"] {
		t.Errorf("os cells = %v", found)
	}
	for _, row := range tbl.Rows {
		np := tbl.Cell(row, "execution.nprocs")
		if np != "8" && np != "16" {
			t.Errorf("nprocs cell = %q", np)
		}
	}
}

func TestSortByNumericAndString(t *testing.T) {
	s := studyStore(t)
	tbl := retrieveAll(t, s)
	tbl.SortBy("value", false)
	for i := 1; i < len(tbl.Rows); i++ {
		if tbl.Rows[i-1].Value > tbl.Rows[i].Value {
			t.Fatal("ascending numeric sort broken")
		}
	}
	tbl.SortBy("value", true)
	if tbl.Rows[0].Value != 100 {
		t.Errorf("descending top = %v", tbl.Rows[0].Value)
	}
	tbl.SortBy("execution", false)
	for i := 1; i < len(tbl.Rows); i++ {
		if tbl.Rows[i-1].Execution > tbl.Rows[i].Execution {
			t.Fatal("string sort broken")
		}
	}
}

func TestFilterRowsAndMetric(t *testing.T) {
	s := studyStore(t)
	tbl := retrieveAll(t, s)
	removed := tbl.FilterMetric("wall time")
	if removed != 4 || len(tbl.Rows) != 4 {
		t.Errorf("removed %d, kept %d", removed, len(tbl.Rows))
	}
	removed = tbl.FilterRows(func(r *Row) bool { return r.Value < 90 })
	if removed != 1 || len(tbl.Rows) != 3 {
		t.Errorf("removed %d, kept %d", removed, len(tbl.Rows))
	}
}

func TestGroupByReducers(t *testing.T) {
	s := studyStore(t)
	tbl := retrieveAll(t, s)
	tbl.FilterMetric("wall time")
	if err := tbl.AddAttributeColumn("execution", "nprocs"); err != nil {
		t.Fatal(err)
	}
	keys, mins, err := tbl.GroupBy("execution.nprocs", "min")
	if err != nil {
		t.Fatal(err)
	}
	// Numeric key sort: 8 before 16.
	if len(keys) != 2 || keys[0] != "8" || keys[1] != "16" {
		t.Fatalf("keys = %v", keys)
	}
	if mins[0] != 80 || mins[1] != 45 {
		t.Errorf("mins = %v", mins)
	}
	_, maxs, _ := tbl.GroupBy("execution.nprocs", "max")
	if maxs[0] != 100 || maxs[1] != 60 {
		t.Errorf("maxs = %v", maxs)
	}
	_, avgs, _ := tbl.GroupBy("execution.nprocs", "avg")
	if avgs[0] != 90 || avgs[1] != 52.5 {
		t.Errorf("avgs = %v", avgs)
	}
	_, sums, _ := tbl.GroupBy("execution.nprocs", "sum")
	if sums[0] != 180 {
		t.Errorf("sums = %v", sums)
	}
	_, counts, _ := tbl.GroupBy("execution.nprocs", "count")
	if counts[0] != 2 || counts[1] != 2 {
		t.Errorf("counts = %v", counts)
	}
	if _, _, err := tbl.GroupBy("execution.nprocs", "median"); err == nil {
		t.Error("unknown reducer accepted")
	}
}

func TestSeriesExtraction(t *testing.T) {
	s := studyStore(t)
	tbl := retrieveAll(t, s)
	tbl.FilterMetric("wall time")
	tbl.SortBy("execution", false)
	labels, values := tbl.Series("execution")
	if len(labels) != 4 || len(values) != 4 {
		t.Fatalf("series = %v %v", labels, values)
	}
	if labels[0] != "irs-frost-16" || values[0] != 60 {
		t.Errorf("first point = %q %v", labels[0], values[0])
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := studyStore(t)
	tbl := retrieveAll(t, s)
	tbl.AddAttributeColumn("execution", "nprocs")
	tbl.SortBy("execution", false)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(tbl.Rows) {
		t.Fatalf("rows = %d, want %d", len(got.Rows), len(tbl.Rows))
	}
	if got.ExtraColumns[0] != "execution.nprocs" {
		t.Errorf("extra columns = %v", got.ExtraColumns)
	}
	for i := range got.Rows {
		if got.Rows[i].Value != tbl.Rows[i].Value ||
			got.Rows[i].Execution != tbl.Rows[i].Execution ||
			got.Rows[i].Extra["execution.nprocs"] != tbl.Rows[i].Extra["execution.nprocs"] {
			t.Fatalf("row %d mismatch", i)
		}
	}
	// A reimported table still sorts, filters, and groups.
	got.FilterMetric("wall time")
	keys, _, err := got.GroupBy("execution.nprocs", "min")
	if err != nil || len(keys) != 2 {
		t.Errorf("reimported grouping: %v, %v", keys, err)
	}
}

func TestReadCSVErrors(t *testing.T) {
	bad := []string{
		"",
		"not,the,right,header\n",
		"execution,metric\n",
		"execution,metric,value,units,tool\ne,m,notanumber,u,t\n",
	}
	for _, doc := range bad {
		if _, err := ReadCSV(strings.NewReader(doc)); err == nil {
			t.Errorf("ReadCSV(%q) should fail", doc)
		}
	}
}
