// Package query implements the GUI-facing query workflow of §3.2: retrieve
// performance results matching a pr-filter, then refine the view in a
// second step by adding columns for "free resources" — resources in the
// result contexts that the filter did not constrain and that differ across
// the retrieved results. The table supports sorting, value filtering, bar
// chart extraction, and CSV export/import for spreadsheet interchange.
package query

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"perftrack/internal/core"
	"perftrack/internal/datastore"
)

// Row is one retrieved performance result plus its display cells.
type Row struct {
	ID        int64
	Execution string
	Metric    string
	Tool      string
	Units     string
	Value     float64

	// Resources is the union of context resources for the result.
	Resources []core.ResourceName

	// Extra holds the values of added free-resource columns, keyed by
	// column name.
	Extra map[string]string
}

// Table is a retrieved result set in GUI tabular form (Figure 4).
type Table struct {
	store *datastore.Store
	// Columns fixed at retrieval: Execution, Metric, Value, Units, Tool.
	Rows []*Row
	// ExtraColumns lists added free-resource columns in display order.
	ExtraColumns []string

	// typeOf caches resource types for free-resource analysis.
	typeOf map[core.ResourceName]core.TypePath
}

// FixedColumns is the initial column set of the main window table.
var FixedColumns = []string{"execution", "metric", "value", "units", "tool"}

// Retrieve evaluates a pr-filter against the store and builds the result
// table (the GUI's "get data" step). The filter is evaluated once; rows
// are materialized from the matching IDs.
func Retrieve(s *datastore.Store, prf core.PRFilter) (*Table, error) {
	return RetrieveCtx(context.Background(), s, prf)
}

// RetrieveCtx is Retrieve under a context, so a trace riding ctx records
// the filter-evaluation and materialization spans.
func RetrieveCtx(ctx context.Context, s *datastore.Store, prf core.PRFilter) (*Table, error) {
	ids, err := s.MatchingResultIDsCtx(ctx, prf)
	if err != nil {
		return nil, err
	}
	results, err := s.MaterializeResultsCtx(ctx, ids)
	if err != nil {
		return nil, err
	}
	t := &Table{store: s, typeOf: make(map[core.ResourceName]core.TypePath)}
	for i, pr := range results {
		row := &Row{
			ID:        ids[i],
			Execution: pr.Execution,
			Metric:    pr.Metric,
			Tool:      pr.Tool,
			Units:     pr.Units,
			Value:     pr.Value,
			Resources: pr.AllResources(),
			Extra:     make(map[string]string),
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func (t *Table) resolveType(name core.ResourceName) (core.TypePath, error) {
	if t.store == nil {
		return "", fmt.Errorf("query: table is detached from a store (CSV import); free-resource columns are unavailable")
	}
	if tp, ok := t.typeOf[name]; ok {
		return tp, nil
	}
	tp, err := t.store.TypeOfResource(name)
	if err != nil {
		return "", err
	}
	t.typeOf[name] = tp
	return tp, nil
}

// FreeResourceColumn describes one candidate column from the "Add
// Columns" dialog: a resource type whose resource names are not identical
// across all retrieved results, plus the attribute names seen on those
// resources.
type FreeResourceColumn struct {
	Type       core.TypePath
	Distinct   int      // how many distinct resource names appear
	Attributes []string // attribute names available on these resources
}

// FreeResources analyzes the retrieved results and returns candidate
// columns. Per §3.2, types whose resource name is identical for all
// results are omitted (they carry no information for comparison).
func (t *Table) FreeResources() ([]FreeResourceColumn, error) {
	if t.store == nil {
		return nil, fmt.Errorf("query: table is detached from a store (CSV import); free-resource analysis is unavailable")
	}
	byType := make(map[core.TypePath]map[core.ResourceName]bool)
	covered := make(map[core.TypePath]int) // results having >= 1 resource of type
	for _, row := range t.Rows {
		seen := make(map[core.TypePath]bool)
		for _, r := range row.Resources {
			tp, err := t.resolveType(r)
			if err != nil {
				return nil, err
			}
			if byType[tp] == nil {
				byType[tp] = make(map[core.ResourceName]bool)
			}
			byType[tp][r] = true
			if !seen[tp] {
				seen[tp] = true
				covered[tp]++
			}
		}
	}
	var out []FreeResourceColumn
	for tp, names := range byType {
		// A type is interesting when results differ on it: either multiple
		// distinct names, or some results lack the type entirely.
		if len(names) <= 1 && covered[tp] == len(t.Rows) {
			continue
		}
		col := FreeResourceColumn{Type: tp, Distinct: len(names)}
		attrSet := make(map[string]bool)
		for name := range names {
			res, err := t.store.ResourceByName(name)
			if err != nil {
				return nil, err
			}
			for a := range res.Attributes {
				attrSet[a] = true
			}
		}
		for a := range attrSet {
			col.Attributes = append(col.Attributes, a)
		}
		sort.Strings(col.Attributes)
		out = append(out, col)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Type < out[j].Type })
	return out, nil
}

// AddColumn adds a display column for a free-resource type. Each row's
// cell holds the name of its context resource with that type (the base
// name, or full name if requested); rows without such a resource get "".
func (t *Table) AddColumn(tp core.TypePath, fullNames bool) error {
	colName := string(tp)
	for _, existing := range t.ExtraColumns {
		if existing == colName {
			return nil
		}
	}
	for _, row := range t.Rows {
		for _, r := range row.Resources {
			rt, err := t.resolveType(r)
			if err != nil {
				return err
			}
			if rt == tp {
				if fullNames {
					row.Extra[colName] = string(r)
				} else {
					row.Extra[colName] = r.BaseName()
				}
				break
			}
		}
	}
	t.ExtraColumns = append(t.ExtraColumns, colName)
	return nil
}

// AddAttributeColumn adds a column holding the value of an attribute of
// each row's resource of the given type.
func (t *Table) AddAttributeColumn(tp core.TypePath, attr string) error {
	colName := string(tp) + "." + attr
	for _, existing := range t.ExtraColumns {
		if existing == colName {
			return nil
		}
	}
	for _, row := range t.Rows {
		for _, r := range row.Resources {
			rt, err := t.resolveType(r)
			if err != nil {
				return err
			}
			if rt != tp {
				continue
			}
			res, err := t.store.ResourceByName(r)
			if err != nil {
				return err
			}
			if v, ok := res.Attributes[attr]; ok {
				row.Extra[colName] = v
			}
			break
		}
	}
	t.ExtraColumns = append(t.ExtraColumns, colName)
	return nil
}

// Columns returns the full display column list.
func (t *Table) Columns() []string {
	return append(append([]string{}, FixedColumns...), t.ExtraColumns...)
}

// Cell renders the value of a column for a row.
func (t *Table) Cell(row *Row, column string) string {
	switch column {
	case "execution":
		return row.Execution
	case "metric":
		return row.Metric
	case "value":
		return strconv.FormatFloat(row.Value, 'g', -1, 64)
	case "units":
		return row.Units
	case "tool":
		return row.Tool
	default:
		return row.Extra[column]
	}
}

// SortBy orders rows by a column; numeric cells compare numerically.
func (t *Table) SortBy(column string, descending bool) {
	less := func(a, b *Row) bool {
		va, vb := t.Cell(a, column), t.Cell(b, column)
		if fa, errA := strconv.ParseFloat(va, 64); errA == nil {
			if fb, errB := strconv.ParseFloat(vb, 64); errB == nil {
				return fa < fb
			}
		}
		return va < vb
	}
	sort.SliceStable(t.Rows, func(i, j int) bool {
		if descending {
			return less(t.Rows[j], t.Rows[i])
		}
		return less(t.Rows[i], t.Rows[j])
	})
}

// FilterRows keeps only rows for which keep returns true, returning the
// number removed (the GUI's "hide some of the entries").
func (t *Table) FilterRows(keep func(*Row) bool) int {
	kept := t.Rows[:0]
	removed := 0
	for _, r := range t.Rows {
		if keep(r) {
			kept = append(kept, r)
		} else {
			removed++
		}
	}
	t.Rows = kept
	return removed
}

// FilterEqual keeps rows whose column equals value.
func (t *Table) FilterEqual(column, value string) int {
	return t.FilterRows(func(r *Row) bool { return t.Cell(r, column) == value })
}

// FilterMetric keeps rows with the given metric.
func (t *Table) FilterMetric(metric string) int {
	return t.FilterEqual("metric", metric)
}

// Series extracts a named series for bar charts (Figure 5): one (label,
// value) point per row, labels drawn from labelColumn.
func (t *Table) Series(labelColumn string) ([]string, []float64) {
	labels := make([]string, len(t.Rows))
	values := make([]float64, len(t.Rows))
	for i, r := range t.Rows {
		labels[i] = t.Cell(r, labelColumn)
		values[i] = r.Value
	}
	return labels, values
}

// GroupBy aggregates row values grouped by a column with the given
// reducer ("min", "max", "avg", "sum", "count"). Keys are returned sorted.
func (t *Table) GroupBy(column, reducer string) ([]string, []float64, error) {
	groups := make(map[string][]float64)
	for _, r := range t.Rows {
		k := t.Cell(r, column)
		groups[k] = append(groups[k], r.Value)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		fi, errI := strconv.ParseFloat(keys[i], 64)
		fj, errJ := strconv.ParseFloat(keys[j], 64)
		if errI == nil && errJ == nil {
			return fi < fj
		}
		return keys[i] < keys[j]
	})
	vals := make([]float64, len(keys))
	for i, k := range keys {
		vs := groups[k]
		switch reducer {
		case "min":
			m := vs[0]
			for _, v := range vs[1:] {
				if v < m {
					m = v
				}
			}
			vals[i] = m
		case "max":
			m := vs[0]
			for _, v := range vs[1:] {
				if v > m {
					m = v
				}
			}
			vals[i] = m
		case "avg":
			sum := 0.0
			for _, v := range vs {
				sum += v
			}
			vals[i] = sum / float64(len(vs))
		case "sum":
			sum := 0.0
			for _, v := range vs {
				sum += v
			}
			vals[i] = sum
		case "count":
			vals[i] = float64(len(vs))
		default:
			return nil, nil, fmt.Errorf("query: unknown reducer %q", reducer)
		}
	}
	return keys, vals, nil
}
