package query

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV exports the table, including added columns, in a format
// suitable for spreadsheet import (§3.2/§4.1: "output a dataset of
// interest into a text file, input it into an OpenOffice spreadsheet").
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	cols := t.Columns()
	if err := cw.Write(cols); err != nil {
		return err
	}
	for _, row := range t.Rows {
		rec := make([]string, len(cols))
		for i, c := range cols {
			rec[i] = t.Cell(row, c)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV imports a table previously written by WriteCSV ("store the data
// to files, read it back in"). The result is detached from any store:
// free-resource analysis is unavailable, but sorting, filtering, grouping,
// and charting work.
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("query: CSV header: %w", err)
	}
	if len(header) < len(FixedColumns) {
		return nil, fmt.Errorf("query: CSV header has %d columns, need at least %d",
			len(header), len(FixedColumns))
	}
	for i, want := range FixedColumns {
		if header[i] != want {
			return nil, fmt.Errorf("query: CSV column %d is %q, want %q", i, header[i], want)
		}
	}
	t := &Table{}
	t.ExtraColumns = append(t.ExtraColumns, header[len(FixedColumns):]...)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		v, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("query: CSV line %d: bad value %q", line, rec[2])
		}
		row := &Row{
			Execution: rec[0],
			Metric:    rec[1],
			Value:     v,
			Units:     rec[3],
			Tool:      rec[4],
			Extra:     make(map[string]string),
		}
		for i, c := range t.ExtraColumns {
			row.Extra[c] = rec[len(FixedColumns)+i]
		}
		t.Rows = append(t.Rows, row)
	}
}
