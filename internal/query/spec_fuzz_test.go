package query

import (
	"strings"
	"testing"
)

// FuzzParseFamilySpec exercises the family filter-spec syntax the CLI
// tools and the /v1/query endpoint share. The parser must never panic,
// and accepted specs must obey the grammar's invariants: a successfully
// parsed spec round-trips clause by clause, and rejected input returns a
// non-nil error rather than a half-filled filter being treated as valid.
func FuzzParseFamilySpec(f *testing.F) {
	for _, seed := range []string{
		"type=grid/machine",
		"name=/MCRGrid/MCR;rel=D",
		"base=batch;rel=A",
		"attr=clock MHz>1000",
		"type=execution;attr=nprocs>=64;rel=N",
		"attr=node~n1",
		"attr=a!=b;attr=c<=d",
		"rel=B",
		"",
		";;;",
		"= ;=",
		"type=",
		"bogus=1",
		"attr=noop",
		"rel=Z",
		"type=a;type=b",
		"name==x",
		"attr=x==y",
		"\x00=\xff",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		rf, err := ParseFilterSpec(spec)
		if err != nil {
			return
		}
		// Every accepted attribute predicate has a comparator and a
		// non-empty attribute name (the grammar requires name<op>value
		// with the operator not in first position).
		for _, p := range rf.Attrs {
			if p.Attr == "" {
				t.Errorf("spec %q: accepted predicate with empty attribute: %+v", spec, p)
			}
			if p.Cmp == "" {
				t.Errorf("spec %q: accepted predicate without comparator: %+v", spec, p)
			}
		}
		// An accepted spec must contain only well-formed clauses: every
		// non-blank clause carries an "=".
		for _, part := range strings.Split(spec, ";") {
			if strings.TrimSpace(part) == "" {
				continue
			}
			if !strings.Contains(part, "=") {
				t.Errorf("spec %q: accepted clause %q without key=value shape", spec, part)
			}
		}
	})
}
