package query

// Selection is the unified execution/family selection spec shared by the
// v1 API: /v1/query, /v1/results, /v1/compare, and /v1/diagnose all
// select the same way — zero or more pr-filter family specs (see
// ParseFilterSpec) intersected, optionally restricted to one or more
// named executions. Older per-endpoint field spellings (top-level
// "families", diagnose's "a"/"execs_a") keep decoding; handlers merge
// them into a Selection before evaluation.
type Selection struct {
	// Execution restricts the selection to one named execution. It is
	// shorthand for a single-element Executions list.
	Execution string `json:"execution,omitempty"`
	// Executions restricts the selection to the union of the named
	// executions' results.
	Executions []string `json:"executions,omitempty"`
	// Families holds pr-filter family specs; a result matches when every
	// family matches it (intersection semantics).
	Families []string `json:"families,omitempty"`
}

// ExecutionList merges Execution and Executions, preserving order and
// dropping duplicates and empties.
func (s *Selection) ExecutionList() []string {
	if s == nil {
		return nil
	}
	var out []string
	seen := make(map[string]bool, 1+len(s.Executions))
	for _, e := range append([]string{s.Execution}, s.Executions...) {
		if e == "" || seen[e] {
			continue
		}
		seen[e] = true
		out = append(out, e)
	}
	return out
}

// IsZero reports whether the selection selects everything (no execution
// restriction and no families).
func (s *Selection) IsZero() bool {
	return s == nil || (s.Execution == "" && len(s.Executions) == 0 && len(s.Families) == 0)
}
