package query

import (
	"fmt"
	"strings"

	"perftrack/internal/core"
)

// ParseFilterSpec parses the textual resource-filter syntax shared by the
// CLI tools: semicolon-separated key=value clauses.
//
//	type=grid/machine          select by resource type
//	name=/MCRGrid/MCR          select by full resource name
//	base=batch                 select by base name
//	attr=clock MHz>1000        attribute predicate (= != < <= > >= ~)
//	rel=D                      relatives flag: N, D (default), A, or B
func ParseFilterSpec(spec string) (core.ResourceFilter, error) {
	rf := core.ResourceFilter{Include: core.IncludeDescendants}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return rf, fmt.Errorf("query: bad filter clause %q (want key=value)", part)
		}
		key, val := strings.TrimSpace(kv[0]), kv[1]
		switch key {
		case "type":
			rf.Type = core.TypePath(val)
		case "name":
			rf.Name = core.ResourceName(val)
		case "base":
			rf.BaseName = val
		case "rel":
			c, err := core.ParseClusion(val)
			if err != nil {
				return rf, err
			}
			rf.Include = c
		case "attr":
			p, err := ParseAttrPredicate(val)
			if err != nil {
				return rf, err
			}
			rf.Attrs = append(rf.Attrs, p)
		default:
			return rf, fmt.Errorf("query: unknown filter key %q", key)
		}
	}
	return rf, nil
}

// ParseAttrPredicate parses "name<op>value" where <op> is one of
// = != < <= > >= or ~ (contains).
func ParseAttrPredicate(s string) (core.AttrPredicate, error) {
	// Two-character operators must be tried before their one-character
	// prefixes.
	for _, op := range []string{"!=", "<=", ">=", "=", "<", ">", "~"} {
		if i := strings.Index(s, op); i > 0 {
			cmp := core.Comparator(op)
			if op == "~" {
				cmp = core.CmpContains
			}
			return core.AttrPredicate{
				Attr:  strings.TrimSpace(s[:i]),
				Cmp:   cmp,
				Value: strings.TrimSpace(s[i+len(op):]),
			}, nil
		}
	}
	return core.AttrPredicate{}, fmt.Errorf("query: bad attribute predicate %q", s)
}
