package query

import (
	"testing"

	"perftrack/internal/core"
)

func TestParseFilterSpecAllKeys(t *testing.T) {
	rf, err := ParseFilterSpec("type=grid/machine; name=/G/M; base=batch; rel=B; attr=clock MHz>=375")
	if err != nil {
		t.Fatal(err)
	}
	if rf.Type != "grid/machine" || rf.Name != "/G/M" || rf.BaseName != "batch" {
		t.Errorf("rf = %+v", rf)
	}
	if rf.Include != core.IncludeBoth {
		t.Errorf("Include = %v", rf.Include)
	}
	if len(rf.Attrs) != 1 || rf.Attrs[0].Attr != "clock MHz" ||
		rf.Attrs[0].Cmp != core.CmpGe || rf.Attrs[0].Value != "375" {
		t.Errorf("attrs = %+v", rf.Attrs)
	}
}

func TestParseFilterSpecDefaultsToDescendants(t *testing.T) {
	rf, err := ParseFilterSpec("name=/X")
	if err != nil {
		t.Fatal(err)
	}
	if rf.Include != core.IncludeDescendants {
		t.Errorf("default Include = %v, want D (the GUI default)", rf.Include)
	}
}

func TestParseFilterSpecValuesMayContainEquals(t *testing.T) {
	rf, err := ParseFilterSpec("attr=env PATH=/usr/bin")
	if err != nil {
		t.Fatal(err)
	}
	if rf.Attrs[0].Attr != "env PATH" || rf.Attrs[0].Value != "/usr/bin" {
		t.Errorf("attrs = %+v", rf.Attrs)
	}
}

func TestParseFilterSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"justtext",
		"unknown=x",
		"rel=Z",
		"attr=noseparator",
	} {
		if _, err := ParseFilterSpec(spec); err == nil {
			t.Errorf("ParseFilterSpec(%q) should fail", spec)
		}
	}
}

func TestParseAttrPredicateOperators(t *testing.T) {
	cases := []struct {
		in   string
		attr string
		cmp  core.Comparator
		val  string
	}{
		{"a=1", "a", core.CmpEq, "1"},
		{"a!=1", "a", core.CmpNe, "1"},
		{"a<1", "a", core.CmpLt, "1"},
		{"a<=1", "a", core.CmpLe, "1"},
		{"a>1", "a", core.CmpGt, "1"},
		{"a>=1", "a", core.CmpGe, "1"},
		{"a~sub", "a", core.CmpContains, "sub"},
		{"clock MHz >= 375", "clock MHz", core.CmpGe, "375"},
	}
	for _, c := range cases {
		p, err := ParseAttrPredicate(c.in)
		if err != nil {
			t.Fatalf("ParseAttrPredicate(%q): %v", c.in, err)
		}
		if p.Attr != c.attr || p.Cmp != c.cmp || p.Value != c.val {
			t.Errorf("ParseAttrPredicate(%q) = %+v", c.in, p)
		}
	}
	if _, err := ParseAttrPredicate("=leadingop"); err == nil {
		t.Error("predicate without attribute name accepted")
	}
}
