// Package pmapi generates and parses hardware-counter data in the style
// of the AIX PMAPI interface, as used in the §4.2 noise study (Figure 7
// shows SMG output followed by PMAPI counter data inserted by additional
// instrumentation). Values are reported per task (MPI rank) per counter.
package pmapi

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"perftrack/internal/core"
	"perftrack/internal/ptdf"
)

// Counters is the generated counter group (a pm_basic-like set).
var Counters = []string{
	"PM_CYC", "PM_INST_CMPL", "PM_FPU0_CMPL", "PM_FPU1_CMPL",
	"PM_LD_MISS_L1", "PM_ST_MISS_L1", "PM_TLB_MISS", "PM_BR_MPRED",
}

// Run describes one generated PMAPI capture.
type Run struct {
	Execution string
	NProcs    int
	Seed      int64
}

// Generate writes a PMAPI counter report: a header followed by one line
// per (task, counter).
func Generate(w io.Writer, run Run) error {
	rng := rand.New(rand.NewSource(run.Seed))
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "PMAPI hardware counter report\n")
	fmt.Fprintf(bw, "Group: pm_basic\n")
	fmt.Fprintf(bw, "Tasks: %d\n", run.NProcs)
	fmt.Fprintf(bw, "%-6s %-20s %20s\n", "Task", "Counter", "Value")
	for task := 0; task < run.NProcs; task++ {
		scale := 0.9 + rng.Float64()*0.2
		for ci, counter := range Counters {
			base := 1e9 / float64(ci+1)
			v := int64(base * scale * (0.8 + rng.Float64()*0.4))
			fmt.Fprintf(bw, "%-6d %-20s %20d\n", task, counter, v)
		}
	}
	return bw.Flush()
}

// Sample is one (task, counter) reading.
type Sample struct {
	Task    int
	Counter string
	Value   int64
}

// Report is a parsed PMAPI file.
type Report struct {
	Group   string
	Tasks   int
	Samples []Sample
}

// Parse reads a PMAPI counter report.
func Parse(r io.Reader) (*Report, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	rep := &Report{}
	line := 0
	inTable := false
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		switch {
		case text == "" || strings.HasPrefix(text, "PMAPI hardware"):
			continue
		case strings.HasPrefix(text, "Group:"):
			rep.Group = strings.TrimSpace(strings.TrimPrefix(text, "Group:"))
		case strings.HasPrefix(text, "Tasks:"):
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(text, "Tasks:")))
			if err != nil {
				return nil, fmt.Errorf("pmapi: line %d: %w", line, err)
			}
			rep.Tasks = n
		case strings.HasPrefix(text, "Task"):
			inTable = true
		default:
			if !inTable {
				return nil, fmt.Errorf("pmapi: line %d: unexpected %q", line, text)
			}
			fields := strings.Fields(text)
			if len(fields) != 3 {
				return nil, fmt.Errorf("pmapi: line %d: expected 3 columns, got %d", line, len(fields))
			}
			task, err := strconv.Atoi(fields[0])
			if err != nil {
				return nil, fmt.Errorf("pmapi: line %d: bad task %q", line, fields[0])
			}
			v, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("pmapi: line %d: bad value %q", line, fields[2])
			}
			rep.Samples = append(rep.Samples, Sample{Task: task, Counter: fields[1], Value: v})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Samples) == 0 {
		return nil, fmt.Errorf("pmapi: no samples")
	}
	return rep, nil
}

// ToPTdf converts a parsed report to PTdf: a process resource per task
// and one performance result per sample, in a context of application +
// execution + process (+ machine).
func (rep *Report) ToPTdf(app, execName string, machineRes core.ResourceName) []ptdf.Record {
	var recs []ptdf.Record
	recs = append(recs,
		ptdf.ApplicationRec{Name: app},
		ptdf.ExecutionRec{Name: execName, App: app},
	)
	appRes := core.ResourceName("/" + app)
	recs = append(recs, ptdf.ResourceRec{Name: appRes, Type: "application"})
	execRes := core.ResourceName("/" + execName)
	recs = append(recs, ptdf.ResourceRec{Name: execRes, Type: "execution", Exec: execName})
	if rep.Group != "" {
		recs = append(recs, ptdf.ResourceAttributeRec{
			Resource: execRes, Attr: "counter group", Value: rep.Group, AttrType: "string",
		})
	}
	seenProc := make(map[int]bool)
	for _, s := range rep.Samples {
		procRes := execRes.Child(fmt.Sprintf("p%d", s.Task))
		if !seenProc[s.Task] {
			seenProc[s.Task] = true
			recs = append(recs, ptdf.ResourceRec{Name: procRes, Type: "execution/process", Exec: execName})
		}
		ctx := []core.ResourceName{appRes, execRes, procRes}
		if machineRes != "" {
			ctx = append(ctx, machineRes)
		}
		recs = append(recs, ptdf.PerfResultRec{
			Exec:   execName,
			Sets:   []ptdf.ResourceSet{{Names: ctx, Type: core.FocusPrimary}},
			Tool:   "PMAPI",
			Metric: s.Counter,
			Value:  float64(s.Value),
			Units:  "events",
		})
	}
	return recs
}
