package pmapi

import (
	"bytes"
	"strings"
	"testing"

	"perftrack/internal/datastore"
	"perftrack/internal/ptdf"
	"perftrack/internal/reldb"
)

func genReport(t *testing.T, run Run) *Report {
	t.Helper()
	var buf bytes.Buffer
	if err := Generate(&buf, run); err != nil {
		t.Fatal(err)
	}
	rep, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestGenerateParseRoundTrip(t *testing.T) {
	rep := genReport(t, Run{Execution: "e", NProcs: 16, Seed: 1})
	if rep.Group != "pm_basic" || rep.Tasks != 16 {
		t.Errorf("header = %+v", rep)
	}
	if len(rep.Samples) != 16*len(Counters) {
		t.Errorf("samples = %d, want %d", len(rep.Samples), 16*len(Counters))
	}
	for _, s := range rep.Samples {
		if s.Value <= 0 {
			t.Fatalf("non-positive counter: %+v", s)
		}
		if s.Task < 0 || s.Task >= 16 {
			t.Fatalf("task out of range: %+v", s)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"Tasks: 2\n",                         // no samples
		"stray\n",                            // outside table
		"Task Counter Value\n0 PM_CYC abc\n", // bad value
		"Task Counter Value\nx PM_CYC 12\n",  // bad task
		"Task Counter Value\n0 PM_CYC\n",     // short row
	}
	for _, doc := range bad {
		if _, err := Parse(strings.NewReader(doc)); err == nil {
			t.Errorf("Parse(%q) should fail", doc)
		}
	}
}

func TestToPTdfPerProcessResults(t *testing.T) {
	rep := genReport(t, Run{Execution: "e", NProcs: 4, Seed: 2})
	recs := rep.ToPTdf("smg2000", "smg-uv-001", "/UVGrid/UV")
	s, err := datastore.Open(reldb.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddResource("/UVGrid/UV", "grid/machine", ""); err != nil {
		t.Fatal(err)
	}
	results := 0
	for i, rec := range recs {
		if err := s.LoadRecord(rec); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if _, ok := rec.(ptdf.PerfResultRec); ok {
			results++
		}
	}
	if results != 4*len(Counters) {
		t.Errorf("results = %d", results)
	}
	// Process resources exist under the execution.
	kids, err := s.Children("/smg-uv-001")
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 4 {
		t.Errorf("processes = %v", kids)
	}
	if got, err := s.Tools(); err != nil || len(got) != 1 || got[0] != "PMAPI" {
		t.Errorf("tools = %v, %v", got, err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	Generate(&a, Run{Execution: "e", NProcs: 2, Seed: 9})
	Generate(&b, Run{Execution: "e", NProcs: 2, Seed: 9})
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("generation not deterministic")
	}
}
