package gen

import (
	"fmt"
	"math/rand"
	"strconv"

	"perftrack/internal/core"
	"perftrack/internal/ptdf"
)

// PlantedAttr describes the discriminating attribute a synthetic fleet
// plants: executions built with SlowValue run Factor times slower than
// those built with FastValue. The diagnose subsystem's acceptance test is
// recovering this attribute from the data alone.
type PlantedAttr struct {
	Attr      string  // attribute name, e.g. "compiler"
	FastValue string  // value on the fast executions, e.g. "-O2"
	SlowValue string  // value on the slow executions, e.g. "-O0"
	Factor    float64 // time multiplier for slow executions, e.g. 2.0
	SlowFrac  float64 // fraction of executions planted slow, e.g. 0.5
}

// FleetSpec parameterizes a synthetic diagnosis fleet: Execs executions
// of one application spread round-robin over catalog machines, each
// carrying the planted attribute plus uncorrelated decoy attributes
// (nprocs, input deck, an environment variable), with time-like
// performance results scaled by the planted slowdown.
type FleetSpec struct {
	App      string   // default "smg2000"
	Execs    int      // default 100
	Machines []string // catalog machine names; default {"MCR", "Frost"}
	Planted  PlantedAttr
	Seed     int64
}

// Fleet is the generated corpus with its ground truth.
type Fleet struct {
	Records []ptdf.Record
	Fast    []string // executions planted with FastValue
	Slow    []string // executions planted with SlowValue
}

func (fs *FleetSpec) defaults() {
	if fs.App == "" {
		fs.App = "smg2000"
	}
	if fs.Execs <= 0 {
		fs.Execs = 100
	}
	if len(fs.Machines) == 0 {
		fs.Machines = []string{"MCR", "Frost"}
	}
	if fs.Planted.Attr == "" {
		fs.Planted = PlantedAttr{
			Attr: "compiler", FastValue: "-O2", SlowValue: "-O0",
			Factor: 2.0, SlowFrac: 0.5,
		}
	}
	if fs.Planted.Factor <= 0 {
		fs.Planted.Factor = 2.0
	}
	if fs.Planted.SlowFrac <= 0 || fs.Planted.SlowFrac >= 1 {
		fs.Planted.SlowFrac = 0.5
	}
}

// FleetRecords generates a deterministic fleet for the given spec. The
// slow/fast assignment is shuffled so it is statistically independent of
// execution order, machine, and every decoy attribute — the planted
// attribute is the only thing that separates the two populations.
func FleetRecords(spec FleetSpec) (*Fleet, error) {
	spec.defaults()
	rng := rand.New(rand.NewSource(spec.Seed))
	machines := make([]Machine, len(spec.Machines))
	for i, name := range spec.Machines {
		m, err := MachineByName(name)
		if err != nil {
			return nil, err
		}
		machines[i] = m
	}
	fleet := &Fleet{}
	fleet.Records = append(fleet.Records, ptdf.ApplicationRec{Name: spec.App})
	// One grid hierarchy per machine (2 nodes each is enough to carry the
	// processor-level attributes like clock MHz).
	for _, m := range machines {
		fleet.Records = append(fleet.Records, m.ToPTdf(2)...)
	}
	// Exact slow/fast split, shuffled.
	slowN := int(float64(spec.Execs)*spec.Planted.SlowFrac + 0.5)
	slow := make([]bool, spec.Execs)
	for i := 0; i < slowN; i++ {
		slow[i] = true
	}
	rng.Shuffle(len(slow), func(i, j int) { slow[i], slow[j] = slow[j], slow[i] })

	decks := []string{"std.deck", "large.deck"}
	nprocs := []int{32, 64}
	threads := []string{"1", "2"}
	for i := 0; i < spec.Execs; i++ {
		execName := fmt.Sprintf("%s-fleet-%03d", spec.App, i)
		m := machines[i%len(machines)]
		fleet.Records = append(fleet.Records, ptdf.ExecutionRec{Name: execName, App: spec.App})
		execRes := core.ResourceName("/" + execName)
		fleet.Records = append(fleet.Records, ptdf.ResourceRec{
			Name: execRes, Type: "execution", Exec: execName,
		})
		attr := func(name, value string) {
			fleet.Records = append(fleet.Records, ptdf.ResourceAttributeRec{
				Resource: execRes, Attr: name, Value: value, AttrType: "string",
			})
		}
		planted := spec.Planted.FastValue
		factor := 1.0
		if slow[i] {
			planted = spec.Planted.SlowValue
			factor = spec.Planted.Factor
			fleet.Slow = append(fleet.Slow, execName)
		} else {
			fleet.Fast = append(fleet.Fast, execName)
		}
		attr(spec.Planted.Attr, planted)
		attr("nprocs", strconv.Itoa(nprocs[rng.Intn(len(nprocs))]))
		attr("input deck", decks[rng.Intn(len(decks))])
		attr("env OMP_NUM_THREADS", threads[rng.Intn(len(threads))])

		ctx := []ptdf.ResourceSet{{
			Names: []core.ResourceName{execRes, m.Res()},
			Type:  core.FocusPrimary,
		}}
		jitter := func() float64 { return 1 + 0.05*(rng.Float64()-0.5) }
		fleet.Records = append(fleet.Records,
			ptdf.PerfResultRec{
				Exec: execName, Sets: ctx, Tool: "gen",
				Metric: "wall clock time", Units: "seconds",
				Value: 100 * factor * jitter(),
			},
			ptdf.PerfResultRec{
				Exec: execName, Sets: ctx, Tool: "gen",
				Metric: "MPI time", Units: "seconds",
				Value: 20 * factor * jitter(),
			},
			ptdf.PerfResultRec{
				Exec: execName, Sets: ctx, Tool: "gen",
				Metric: "iteration count", Units: "unitless",
				Value: float64(40 + rng.Intn(3)),
			},
		)
	}
	return fleet, nil
}
