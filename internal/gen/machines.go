// Package gen provides the synthetic substitutes for the LLNL testbed:
// descriptive data for the four machines the paper's case studies ran on
// (MCR, Frost, UV, and BlueGene/L), and study orchestration that writes
// tool-output files at Table 1 scales and converts them — via the PTdfGen
// index-file workflow of §3.3 — into PTdf for loading.
package gen

import (
	"fmt"

	"perftrack/internal/core"
	"perftrack/internal/ptdf"
)

// Partition is one scheduling partition of a machine.
type Partition struct {
	Name         string
	Nodes        int
	ProcsPerNode int
}

// Machine describes one platform from the case studies.
type Machine struct {
	Name          string
	GridName      string // top-level grid resource, e.g. "MCRGrid"
	Vendor        string
	OS            string
	OSVersion     string
	ProcessorType string
	ClockMHz      int
	Partitions    []Partition
}

// Catalog returns the four case-study machines with their published
// characteristics: MCR (a Linux cluster, §4.1), Frost (an AIX cluster,
// §4.1), UV (128 8-way Power4+ nodes at 1.5 GHz, §4.2), and BlueGene/L
// (an early partition of 16k PowerPC 440 nodes, §4.2).
func Catalog() []Machine {
	return []Machine{
		{
			Name: "MCR", GridName: "MCRGrid", Vendor: "LNXI",
			OS: "Linux", OSVersion: "CHAOS 2.0", ProcessorType: "Xeon",
			ClockMHz: 2400,
			Partitions: []Partition{
				{Name: "batch", Nodes: 1024, ProcsPerNode: 2},
				{Name: "debug", Nodes: 32, ProcsPerNode: 2},
			},
		},
		{
			Name: "Frost", GridName: "SingleMachineFrost", Vendor: "IBM",
			OS: "AIX", OSVersion: "5.2", ProcessorType: "Power3",
			ClockMHz: 375,
			Partitions: []Partition{
				{Name: "batch", Nodes: 64, ProcsPerNode: 16},
				{Name: "debug", Nodes: 4, ProcsPerNode: 16},
			},
		},
		{
			Name: "UV", GridName: "UVGrid", Vendor: "IBM",
			OS: "AIX", OSVersion: "5.2", ProcessorType: "Power4+",
			ClockMHz: 1500,
			Partitions: []Partition{
				{Name: "batch", Nodes: 128, ProcsPerNode: 8},
			},
		},
		{
			Name: "BGL", GridName: "BGLGrid", Vendor: "IBM",
			OS: "BLRTS", OSVersion: "1.0", ProcessorType: "PowerPC 440",
			ClockMHz: 700,
			Partitions: []Partition{
				{Name: "R0", Nodes: 16384, ProcsPerNode: 2},
			},
		},
	}
}

// MachineByName returns the catalog machine with the given name.
func MachineByName(name string) (Machine, error) {
	for _, m := range Catalog() {
		if m.Name == name {
			return m, nil
		}
	}
	return Machine{}, fmt.Errorf("gen: no machine %q in catalog", name)
}

// Res returns the machine's full resource name.
func (m Machine) Res() core.ResourceName {
	return core.ResourceName("/" + m.GridName + "/" + m.Name)
}

// ToPTdf emits grid-hierarchy resources for the machine. maxNodes caps
// the nodes emitted per partition (BlueGene/L has 16k nodes; a full
// emission is possible but rarely needed), with the true node count
// recorded as a partition attribute either way. maxNodes <= 0 emits
// every node.
func (m Machine) ToPTdf(maxNodes int) []ptdf.Record {
	var recs []ptdf.Record
	gridRes := core.ResourceName("/" + m.GridName)
	recs = append(recs, ptdf.ResourceRec{Name: gridRes, Type: "grid"})
	machRes := gridRes.Child(m.Name)
	recs = append(recs, ptdf.ResourceRec{Name: machRes, Type: "grid/machine"})
	attr := func(res core.ResourceName, name, value string) {
		recs = append(recs, ptdf.ResourceAttributeRec{
			Resource: res, Attr: name, Value: value, AttrType: "string",
		})
	}
	attr(machRes, "vendor", m.Vendor)
	attr(machRes, "operating system", m.OS)
	attr(machRes, "os version", m.OSVersion)
	osRes := core.ResourceName("/" + m.OS)
	recs = append(recs, ptdf.ResourceRec{Name: osRes, Type: "operatingSystem"})
	recs = append(recs, ptdf.ResourceConstraintRec{R1: machRes, R2: osRes})

	for _, part := range m.Partitions {
		partRes := machRes.Child(part.Name)
		recs = append(recs, ptdf.ResourceRec{Name: partRes, Type: "grid/machine/partition"})
		attr(partRes, "node count", fmt.Sprintf("%d", part.Nodes))
		attr(partRes, "processors per node", fmt.Sprintf("%d", part.ProcsPerNode))
		nodes := part.Nodes
		if maxNodes > 0 && nodes > maxNodes {
			nodes = maxNodes
		}
		for n := 0; n < nodes; n++ {
			nodeRes := partRes.Child(fmt.Sprintf("%s%d", nodeStem(m.Name), n))
			recs = append(recs, ptdf.ResourceRec{Name: nodeRes, Type: "grid/machine/partition/node"})
			for p := 0; p < part.ProcsPerNode; p++ {
				procRes := nodeRes.Child(fmt.Sprintf("p%d", p))
				recs = append(recs, ptdf.ResourceRec{Name: procRes, Type: "grid/machine/partition/node/processor"})
				attr(procRes, "processor type", m.ProcessorType)
				attr(procRes, "clock MHz", fmt.Sprintf("%d", m.ClockMHz))
				attr(procRes, "vendor", m.Vendor)
			}
		}
	}
	return recs
}

func nodeStem(machine string) string {
	switch machine {
	case "Frost":
		return "frost"
	case "MCR":
		return "mcr"
	case "UV":
		return "uv"
	case "BGL":
		return "bgl"
	default:
		return "n"
	}
}
