package gen

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"perftrack/internal/datastore"
	"perftrack/internal/ptdf"
	"perftrack/internal/reldb"
)

func TestCatalogHasFourMachines(t *testing.T) {
	cat := Catalog()
	if len(cat) != 4 {
		t.Fatalf("catalog = %d machines", len(cat))
	}
	names := map[string]Machine{}
	for _, m := range cat {
		names[m.Name] = m
	}
	// §4.2: UV has 128 8-way Power4+ nodes at 1.5 GHz.
	uv := names["UV"]
	if uv.ClockMHz != 1500 || uv.ProcessorType != "Power4+" ||
		uv.Partitions[0].Nodes != 128 || uv.Partitions[0].ProcsPerNode != 8 {
		t.Errorf("UV = %+v", uv)
	}
	// §4.2: BG/L's early partition had 16k PowerPC 440 nodes.
	bgl := names["BGL"]
	if bgl.Partitions[0].Nodes != 16384 || bgl.ProcessorType != "PowerPC 440" {
		t.Errorf("BGL = %+v", bgl)
	}
	if _, err := MachineByName("Frost"); err != nil {
		t.Error(err)
	}
	if _, err := MachineByName("nonesuch"); err == nil {
		t.Error("unknown machine accepted")
	}
}

func TestMachineToPTdfLoadsWithCap(t *testing.T) {
	m, _ := MachineByName("Frost")
	s, err := datastore.Open(reldb.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range m.ToPTdf(4) {
		if err := s.LoadRecord(rec); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	// 4 nodes per partition x 16 procs.
	procs, err := s.ResourcesOfType("grid/machine/partition/node/processor")
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 2*4*16 {
		t.Errorf("processors = %d", len(procs))
	}
	p, _ := s.ResourceByName(procs[0])
	if p.Attributes["clock MHz"] != "375" || p.Attributes["processor type"] != "Power3" {
		t.Errorf("processor attrs = %v", p.Attributes)
	}
	// True node count recorded as an attribute even when capped.
	part, _ := s.ResourceByName("/SingleMachineFrost/Frost/batch")
	if part.Attributes["node count"] != "64" {
		t.Errorf("partition attrs = %v", part.Attributes)
	}
}

func TestTopologyFactorization(t *testing.T) {
	for _, n := range []int{1, 2, 8, 64, 60, 17} {
		px, py, pz := topology(n)
		if px*py*pz != n {
			t.Errorf("topology(%d) = %d*%d*%d", n, px, py, pz)
		}
	}
}

func TestWriteExecutionFileCountsMatchTable1(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		kind  string
		files int
	}{
		{KindIRS, 6},    // Table 1: 6 files per IRS execution
		{KindSMGUV, 2},  // Table 1: 2 files per SMG-UV execution
		{KindSMGBGL, 1}, // Table 1: 1 file per SMG-BG/L execution
	}
	for _, c := range cases {
		sub := filepath.Join(dir, c.kind)
		files, err := WriteExecution(sub, ExecSpec{
			Kind: c.kind, Execution: "e-" + c.kind, App: "app",
			Machine: "MCR", NProcs: 8, Seed: 1,
		})
		if err != nil {
			t.Fatalf("%s: %v", c.kind, err)
		}
		if len(files) != c.files {
			t.Errorf("%s: %d files, want %d", c.kind, len(files), c.files)
		}
		for _, f := range files {
			st, err := os.Stat(filepath.Join(sub, f))
			if err != nil || st.Size() == 0 {
				t.Errorf("%s: file %s missing or empty", c.kind, f)
			}
		}
	}
}

func TestWriteExecutionUnknownKind(t *testing.T) {
	if _, err := WriteExecution(t.TempDir(), ExecSpec{Kind: "bogus"}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestConvertExecutionAllKinds(t *testing.T) {
	for _, kind := range []string{KindIRS, KindSMGUV, KindSMGBGL} {
		dir := t.TempDir()
		spec := ExecSpec{
			Kind: kind, Execution: "e1", App: "app",
			Machine: "UV", NProcs: 4, Seed: 2,
		}
		if _, err := WriteExecution(dir, spec); err != nil {
			t.Fatalf("%s write: %v", kind, err)
		}
		recs, err := ConvertExecution(dir, spec)
		if err != nil {
			t.Fatalf("%s convert: %v", kind, err)
		}
		results := 0
		for _, rec := range recs {
			if _, ok := rec.(ptdf.PerfResultRec); ok {
				results++
			}
		}
		switch kind {
		case KindSMGBGL:
			if results != 8 {
				t.Errorf("%s: results = %d, want 8", kind, results)
			}
		case KindSMGUV:
			// 8 benchmark + 4*8 PMAPI + mpiP (5 tasks*2 + 36*5*4).
			if results < 500 {
				t.Errorf("%s: results = %d, want several hundred", kind, results)
			}
		case KindIRS:
			// 4 group files x ~19 functions x 5 metrics x ~94% x 4 stats
			// ~= 1,500, the paper's 1,514 per execution.
			if results < 1200 || results > 1700 {
				t.Errorf("%s: results = %d, want ~1514", kind, results)
			}
		}
	}
}

func TestIndexRoundTrip(t *testing.T) {
	entries := []IndexEntry{
		{Execution: "e1", App: "irs", Concurrency: "MPI", NProcs: 8, NThreads: 1,
			BuildTime: "2005-04-01T00:00:00Z", RunTime: "2005-04-02T00:00:00Z",
			Kind: KindIRS, Machine: "MCR", Dir: "/tmp/e1", Seed: 7},
	}
	var buf bytes.Buffer
	if err := WriteIndex(&buf, entries); err != nil {
		t.Fatal(err)
	}
	got, err := ParseIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != entries[0] {
		t.Errorf("round trip = %+v", got)
	}
}

func TestParseIndexErrors(t *testing.T) {
	bad := []string{
		"e1 irs MPI 8\n",
		"e1 irs MPI x 1 b r k m d 1\n",
		"e1 irs MPI 8 x b r k m d 1\n",
		"e1 irs MPI 8 1 b r k m d x\n",
	}
	for _, doc := range bad {
		if _, err := ParseIndex(bytes.NewReader([]byte(doc))); err == nil {
			t.Errorf("ParseIndex(%q) should fail", doc)
		}
	}
}

func TestPTdfGenEndToEnd(t *testing.T) {
	dataDir := t.TempDir()
	outDir := t.TempDir()
	spec := ExecSpec{Kind: KindSMGBGL, Execution: "bgl-1", App: "smg2000",
		Machine: "BGL", NProcs: 32, Seed: 3}
	if _, err := WriteExecution(dataDir, spec); err != nil {
		t.Fatal(err)
	}
	entries := []IndexEntry{{
		Execution: "bgl-1", App: "smg2000", Concurrency: "MPI",
		NProcs: 32, NThreads: 1, BuildTime: "t0", RunTime: "t1",
		Kind: KindSMGBGL, Machine: "BGL", Dir: dataDir, Seed: 3,
	}}
	paths, err := PTdfGen(entries, outDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("paths = %v", paths)
	}
	// The generated PTdf loads into a store that already has the machine.
	s, err := datastore.Open(reldb.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	m, _ := MachineByName("BGL")
	for _, rec := range m.ToPTdf(2) {
		if err := s.LoadRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := s.LoadPTdfFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if stats.Results != 8 {
		t.Errorf("loaded results = %d", stats.Results)
	}
	// Index attributes landed on the execution resource.
	exec, err := s.ResourceByName("/bgl-1")
	if err != nil {
		t.Fatal(err)
	}
	if exec.Attributes["concurrency model"] != "MPI" || exec.Attributes["build timestamp"] != "t0" {
		t.Errorf("exec attrs = %v", exec.Attributes)
	}
}

func TestSplitCombinedOutput(t *testing.T) {
	data := []byte("smg stuff\nmore\nPMAPI hardware counter report\nGroup: g\n")
	s, p := splitCombinedOutput(data)
	if !bytes.HasPrefix(p, []byte("PMAPI")) || bytes.Contains(s, []byte("PMAPI")) {
		t.Errorf("split = %q / %q", s, p)
	}
	s2, p2 := splitCombinedOutput([]byte("no marker here"))
	if p2 != nil || string(s2) != "no marker here" {
		t.Errorf("split without marker = %q / %q", s2, p2)
	}
}
