package gen

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"perftrack/internal/core"
	"perftrack/internal/irs"
	"perftrack/internal/mpip"
	"perftrack/internal/pmapi"
	"perftrack/internal/ptdf"
	"perftrack/internal/smg"
)

// Study kinds, matching the three Table 1 rows.
const (
	KindIRS    = "irs"     // §4.1: IRS benchmark output (6 files/exec)
	KindSMGUV  = "smg-uv"  // §4.2: SMG + PMAPI + mpiP on UV (2 files/exec)
	KindSMGBGL = "smg-bgl" // §4.2: raw SMG output on BG/L (1 file/exec)
)

// ExecSpec parameterizes the raw data generated for one execution.
type ExecSpec struct {
	Kind      string
	Execution string
	App       string
	Machine   string // catalog machine name
	NProcs    int
	Seed      int64
}

// WriteExecution generates the native tool-output files for one execution
// under dir, returning the file names written.
func WriteExecution(dir string, spec ExecSpec) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	switch spec.Kind {
	case KindIRS:
		return writeIRSExecution(dir, spec)
	case KindSMGUV:
		return writeSMGUVExecution(dir, spec)
	case KindSMGBGL:
		return writeSMGBGLExecution(dir, spec)
	default:
		return nil, fmt.Errorf("gen: unknown study kind %q", spec.Kind)
	}
}

// writeIRSExecution writes the six per-execution files of the Purple
// study: four timer-group timing reports (IRS splits its timing data over
// several files), a build log, and a run environment capture.
func writeIRSExecution(dir string, spec ExecSpec) ([]string, error) {
	var files []string
	// Four timing files, each covering one timer group (a quarter of the
	// instrumented functions), as the real benchmark splits its output.
	groupSize := (irs.FunctionCount() + 3) / 4
	for g := 0; g < 4; g++ {
		name := fmt.Sprintf("%s_grp%d.time", spec.Execution, g)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		err = irs.Generate(f, irs.Run{
			Execution: spec.Execution,
			NProcs:    spec.NProcs,
			Seed:      spec.Seed*16 + int64(g),
			FuncStart: g * groupSize,
			FuncCount: groupSize,
		})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		files = append(files, name)
	}
	// Build log and run environment.
	buildName := spec.Execution + ".build"
	if err := os.WriteFile(filepath.Join(dir, buildName),
		[]byte(syntheticBuildLog(spec)), 0o644); err != nil {
		return nil, err
	}
	files = append(files, buildName)
	envName := spec.Execution + ".runenv"
	if err := os.WriteFile(filepath.Join(dir, envName),
		[]byte(syntheticRunEnv(spec)), 0o644); err != nil {
		return nil, err
	}
	files = append(files, envName)
	return files, nil
}

func syntheticBuildLog(spec ExecSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "make -C %s all\n", spec.App)
	for _, src := range []string{"irs.c", "rad.c", "hydro.c", "comm.c"} {
		fmt.Fprintf(&b, "mpicc -c -O2 -DNDEBUG -qarch=auto %s -o %s.o\n",
			src, strings.TrimSuffix(src, ".c"))
	}
	fmt.Fprintf(&b, "mpicc -o %s irs.o rad.o hydro.o comm.o -lm -lmpi -lpthread\n", spec.App)
	return b.String()
}

func syntheticRunEnv(spec ExecSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "execution: %s\n", spec.Execution)
	fmt.Fprintf(&b, "machine: %s\n", spec.Machine)
	fmt.Fprintf(&b, "nprocs: %d\n", spec.NProcs)
	fmt.Fprintf(&b, "OMP_NUM_THREADS=1\n")
	fmt.Fprintf(&b, "LD_LIBRARY_PATH=/usr/lib:/opt/mpi/lib\n")
	return b.String()
}

// topology factors nprocs into a 3-D process grid.
func topology(nprocs int) (int, int, int) {
	px, py, pz := 1, 1, 1
	d := 0
	for rem := nprocs; rem > 1; {
		f := smallestFactor(rem)
		switch d % 3 {
		case 0:
			px *= f
		case 1:
			py *= f
		case 2:
			pz *= f
		}
		rem /= f
		d++
	}
	return px, py, pz
}

func smallestFactor(n int) int {
	for f := 2; f*f <= n; f++ {
		if n%f == 0 {
			return f
		}
	}
	return n
}

// writeSMGUVExecution writes the two per-execution files of the UV noise
// study: the combined SMG benchmark + PMAPI counter output (Figure 7) and
// the mpiP report (Figure 8).
func writeSMGUVExecution(dir string, spec ExecSpec) ([]string, error) {
	px, py, pz := topology(spec.NProcs)
	outName := spec.Execution + ".out"
	var buf bytes.Buffer
	if err := smg.Generate(&buf, smg.Run{
		Execution: spec.Execution, NProcs: spec.NProcs,
		Px: px, Py: py, Pz: pz, Nx: 35, Ny: 35, Nz: 35,
		Seed: spec.Seed,
	}); err != nil {
		return nil, err
	}
	buf.WriteString("\n")
	if err := pmapi.Generate(&buf, pmapi.Run{
		Execution: spec.Execution, NProcs: spec.NProcs, Seed: spec.Seed + 1,
	}); err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, outName), buf.Bytes(), 0o644); err != nil {
		return nil, err
	}

	mpipName := spec.Execution + ".mpiP"
	f, err := os.Create(filepath.Join(dir, mpipName))
	if err != nil {
		return nil, err
	}
	err = mpip.Generate(f, mpip.Run{
		Execution: spec.Execution,
		Command:   "./smg2000 -n 35 35 35",
		NProcs:    spec.NProcs,
		Callsites: 36,
		Seed:      spec.Seed + 2,
	})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return []string{outName, mpipName}, nil
}

// writeSMGBGLExecution writes the single per-execution file of the BG/L
// study: raw SMG benchmark output only (~1 KB, 8 values).
func writeSMGBGLExecution(dir string, spec ExecSpec) ([]string, error) {
	px, py, pz := topology(spec.NProcs)
	name := spec.Execution + ".out"
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return nil, err
	}
	err = smg.Generate(f, smg.Run{
		Execution: spec.Execution, NProcs: spec.NProcs,
		Px: px, Py: py, Pz: pz, Nx: 35, Ny: 35, Nz: 35,
		Seed: spec.Seed,
	})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return []string{name}, nil
}

// splitCombinedOutput separates an SMG+PMAPI combined file.
func splitCombinedOutput(data []byte) (smgPart, pmapiPart []byte) {
	marker := []byte("PMAPI hardware counter report")
	if i := bytes.Index(data, marker); i >= 0 {
		return data[:i], data[i:]
	}
	return data, nil
}

// runResourceRecords emits the execution-hierarchy resources of one run:
// a process resource per rank, each constrained (§3.1's "process 8 runs on
// node 16" example) to the processor it occupied, filling the machine's
// first partition in rank order. The per-execution resource counts of
// Table 1 are dominated by these records.
func runResourceRecords(execName string, m Machine, np int) []ptdf.Record {
	var recs []ptdf.Record
	execRes := core.ResourceName("/" + execName)
	recs = append(recs, ptdf.ResourceRec{Name: execRes, Type: "execution", Exec: execName})
	if len(m.Partitions) == 0 {
		return recs
	}
	part := m.Partitions[0]
	partRes := m.Res().Child(part.Name)
	stem := nodeStem(m.Name)
	for r := 0; r < np; r++ {
		node := (r / part.ProcsPerNode) % part.Nodes
		cpu := r % part.ProcsPerNode
		procRes := partRes.Child(fmt.Sprintf("%s%d", stem, node)).Child(fmt.Sprintf("p%d", cpu))
		recs = append(recs, ptdf.ResourceRec{
			Name: procRes, Type: "grid/machine/partition/node/processor",
		})
		rankRes := execRes.Child(fmt.Sprintf("p%d", r))
		recs = append(recs, ptdf.ResourceRec{Name: rankRes, Type: "execution/process", Exec: execName})
		recs = append(recs, ptdf.ResourceConstraintRec{R1: rankRes, R2: procRes})
	}
	return recs
}

// ConvertExecution parses the native files of one execution and emits the
// equivalent PTdf records, tagging every result with the machine resource.
func ConvertExecution(dir string, spec ExecSpec) ([]ptdf.Record, error) {
	m, err := MachineByName(spec.Machine)
	if err != nil {
		return nil, err
	}
	machineRes := m.Res()
	switch spec.Kind {
	case KindIRS:
		var recs []ptdf.Record
		for g := 0; g < 4; g++ {
			path := filepath.Join(dir, fmt.Sprintf("%s_grp%d.time", spec.Execution, g))
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			rep, err := irs.Parse(f)
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			recs = append(recs, rep.ToPTdf(spec.App, machineRes)...)
		}
		recs = append(recs, runResourceRecords(spec.Execution, m, spec.NProcs)...)
		return recs, nil
	case KindSMGUV:
		data, err := os.ReadFile(filepath.Join(dir, spec.Execution+".out"))
		if err != nil {
			return nil, err
		}
		smgData, pmapiData := splitCombinedOutput(data)
		smgRep, err := smg.Parse(bytes.NewReader(smgData))
		if err != nil {
			return nil, err
		}
		recs := smgRep.ToPTdf(spec.App, spec.Execution, machineRes)
		if len(pmapiData) > 0 {
			pmRep, err := pmapi.Parse(bytes.NewReader(pmapiData))
			if err != nil {
				return nil, err
			}
			recs = append(recs, pmRep.ToPTdf(spec.App, spec.Execution, machineRes)...)
		}
		f, err := os.Open(filepath.Join(dir, spec.Execution+".mpiP"))
		if err != nil {
			return nil, err
		}
		mpRep, err := mpip.Parse(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		recs = append(recs, mpRep.ToPTdf(spec.App, spec.Execution, machineRes)...)
		recs = append(recs, runResourceRecords(spec.Execution, m, spec.NProcs)...)
		return recs, nil
	case KindSMGBGL:
		f, err := os.Open(filepath.Join(dir, spec.Execution+".out"))
		if err != nil {
			return nil, err
		}
		rep, err := smg.Parse(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		recs := rep.ToPTdf(spec.App, spec.Execution, machineRes)
		recs = append(recs, runResourceRecords(spec.Execution, m, spec.NProcs)...)
		return recs, nil
	default:
		return nil, fmt.Errorf("gen: unknown study kind %q", spec.Kind)
	}
}

// IndexEntry is one line of the PTdfGen index file (§3.3): execution
// name, application name, concurrency model, process and thread counts,
// and build/run timestamps, plus the study kind, machine, and data
// directory needed to locate the files.
type IndexEntry struct {
	Execution   string
	App         string
	Concurrency string
	NProcs      int
	NThreads    int
	BuildTime   string
	RunTime     string
	Kind        string
	Machine     string
	Dir         string
	Seed        int64
}

// WriteIndex writes a PTdfGen index file.
func WriteIndex(w io.Writer, entries []IndexEntry) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# exec app concurrency nprocs nthreads buildTime runTime kind machine dir seed\n")
	for _, e := range entries {
		fmt.Fprintf(bw, "%s %s %s %d %d %s %s %s %s %s %d\n",
			e.Execution, e.App, e.Concurrency, e.NProcs, e.NThreads,
			e.BuildTime, e.RunTime, e.Kind, e.Machine, e.Dir, e.Seed)
	}
	return bw.Flush()
}

// ParseIndex reads a PTdfGen index file.
func ParseIndex(r io.Reader) ([]IndexEntry, error) {
	sc := bufio.NewScanner(r)
	var out []IndexEntry
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 11 {
			return nil, fmt.Errorf("gen: index line %d: expected 11 fields, got %d", line, len(fields))
		}
		np, err := strconv.Atoi(fields[3])
		if err != nil {
			return nil, fmt.Errorf("gen: index line %d: bad nprocs", line)
		}
		nt, err := strconv.Atoi(fields[4])
		if err != nil {
			return nil, fmt.Errorf("gen: index line %d: bad nthreads", line)
		}
		seed, err := strconv.ParseInt(fields[10], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("gen: index line %d: bad seed", line)
		}
		out = append(out, IndexEntry{
			Execution: fields[0], App: fields[1], Concurrency: fields[2],
			NProcs: np, NThreads: nt, BuildTime: fields[5], RunTime: fields[6],
			Kind: fields[7], Machine: fields[8], Dir: fields[9], Seed: seed,
		})
	}
	return out, sc.Err()
}

// PTdfGen converts every execution listed in an index file into one PTdf
// file per execution under outDir, returning the paths written — the
// §3.3 "PTdfGen script to generate PTdf for a directory full of files".
// Execution attributes from the index (concurrency model, counts,
// timestamps) are appended to each file.
func PTdfGen(entries []IndexEntry, outDir string) ([]string, error) {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		recs, err := ConvertExecution(e.Dir, ExecSpec{
			Kind: e.Kind, Execution: e.Execution, App: e.App,
			Machine: e.Machine, NProcs: e.NProcs, Seed: e.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("gen: %s: %w", e.Execution, err)
		}
		execRes := core.ResourceName("/" + e.Execution)
		recs = append(recs,
			ptdf.ResourceAttributeRec{Resource: execRes, Attr: "concurrency model",
				Value: e.Concurrency, AttrType: "string"},
			ptdf.ResourceAttributeRec{Resource: execRes, Attr: "number of threads",
				Value: strconv.Itoa(e.NThreads), AttrType: "string"},
			ptdf.ResourceAttributeRec{Resource: execRes, Attr: "build timestamp",
				Value: e.BuildTime, AttrType: "string"},
			ptdf.ResourceAttributeRec{Resource: execRes, Attr: "run timestamp",
				Value: e.RunTime, AttrType: "string"},
		)
		path := filepath.Join(outDir, e.Execution+".ptdf")
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		err = ptdf.WriteAll(f, recs)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}
