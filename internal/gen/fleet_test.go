package gen

import (
	"reflect"
	"testing"

	"perftrack/internal/ptdf"
)

func TestFleetRecordsSplitAndDeterminism(t *testing.T) {
	fleet, err := FleetRecords(FleetSpec{Execs: 40, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet.Fast) != 20 || len(fleet.Slow) != 20 {
		t.Fatalf("split = %d fast / %d slow, want 20/20", len(fleet.Fast), len(fleet.Slow))
	}
	again, err := FleetRecords(FleetSpec{Execs: 40, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fleet, again) {
		t.Fatal("same seed produced different fleets")
	}
	other, err := FleetRecords(FleetSpec{Execs: 40, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(fleet.Slow, other.Slow) {
		t.Fatal("different seeds produced identical slow assignment")
	}
}

func TestFleetRecordsPlantedAttributeAndResults(t *testing.T) {
	fleet, err := FleetRecords(FleetSpec{Execs: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	slow := make(map[string]bool)
	for _, name := range fleet.Slow {
		slow[name] = true
	}
	// Index planted compiler values by execution resource ("/<exec>").
	compiler := make(map[string]string)
	var nExecs, nResults int
	for _, rec := range fleet.Records {
		switch r := rec.(type) {
		case ptdf.ResourceAttributeRec:
			if r.Attr == "compiler" {
				compiler[string(r.Resource)] = r.Value
			}
		case ptdf.ExecutionRec:
			nExecs++
		case ptdf.PerfResultRec:
			nResults++
			if r.Metric != "wall clock time" {
				continue
			}
			base := 100.0
			if slow[r.Exec] {
				base = 200.0
			}
			if r.Value < base*0.97 || r.Value > base*1.03 {
				t.Errorf("%s wall clock = %v, want ~%v", r.Exec, r.Value, base)
			}
		}
	}
	if nExecs != 10 || nResults != 30 {
		t.Fatalf("%d executions, %d results, want 10/30", nExecs, nResults)
	}
	for _, name := range fleet.Slow {
		if got := compiler["/"+name]; got != "-O0" {
			t.Errorf("slow %s compiler = %q, want -O0", name, got)
		}
	}
	for _, name := range fleet.Fast {
		if got := compiler["/"+name]; got != "-O2" {
			t.Errorf("fast %s compiler = %q, want -O2", name, got)
		}
	}
}

func TestFleetRecordsUnknownMachine(t *testing.T) {
	if _, err := FleetRecords(FleetSpec{Machines: []string{"NoSuchMachine"}}); err == nil {
		t.Fatal("unknown machine accepted")
	}
}
